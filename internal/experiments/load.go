package experiments

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/progs"
	"repro/internal/target"
)

// LoadJob is one allocation request of a service workload: a program
// drawn from a named generator profile, in both IR and wire (textual)
// form. Jobs are deterministic in (Profile, Seed), so a workload replays
// identically across runs and its repeats are cache-hit candidates for
// the allocation service.
type LoadJob struct {
	Profile string
	Seed    int64
	// Prog is the program; Text its canonical textual form as posted to
	// lsra-served (ir.ParseProgram reads it back).
	Prog *ir.Program
	Text string
}

// Workload builds a deterministic service load: one job per
// (profile, seed) pair over seedsPer consecutive seeds starting at
// seed0, in profile-major order. Empty profiles selects every named
// generator profile. The steady-state service benchmark replays a
// workload repeatedly — the first pass misses the daemon's result
// cache, every later pass hits it — and the serve tests use it as
// mixed traffic.
func Workload(mach *target.Machine, profiles []string, seed0 int64, seedsPer int) ([]LoadJob, error) {
	if len(profiles) == 0 {
		profiles = progs.Profiles()
	}
	jobs := make([]LoadJob, 0, len(profiles)*seedsPer)
	for _, name := range profiles {
		for s := int64(0); s < int64(seedsPer); s++ {
			cfg, err := progs.ProfileGen(name, seed0+s)
			if err != nil {
				return nil, fmt.Errorf("experiments: workload: %w", err)
			}
			prog := progs.Random(mach, cfg)
			var sb strings.Builder
			(&ir.Printer{Mach: mach}).WriteProgram(&sb, prog)
			jobs = append(jobs, LoadJob{Profile: name, Seed: seed0 + s, Prog: prog, Text: sb.String()})
		}
	}
	return jobs, nil
}
