package target

import (
	"fmt"
	"strings"
	"testing"
)

// checkConventions validates the structural invariants every machine
// must satisfy for the allocators.
func checkConventions(t *testing.T, m *Machine) {
	t.Helper()
	for c := Class(0); c < NumClasses; c++ {
		seen := make(map[Reg]bool)
		for _, r := range m.AllocOrder(c) {
			if !m.Allocatable(r) {
				t.Errorf("%s: AllocOrder(%v) contains non-allocatable %s", m.Name, c, m.RegName(r))
			}
			if m.RegClass(r) != c {
				t.Errorf("%s: AllocOrder(%v) contains %s of class %v", m.Name, c, m.RegName(r), m.RegClass(r))
			}
			if seen[r] {
				t.Errorf("%s: AllocOrder(%v) repeats %s", m.Name, c, m.RegName(r))
			}
			seen[r] = true
		}
		nAlloc := 0
		for r := 0; r < m.NumRegs(); r++ {
			if m.RegClass(Reg(r)) == c && m.Allocatable(Reg(r)) {
				nAlloc++
				if !seen[Reg(r)] {
					t.Errorf("%s: allocatable %s missing from AllocOrder(%v)", m.Name, m.RegName(Reg(r)), c)
				}
			}
		}
		if nAlloc != len(m.AllocOrder(c)) {
			t.Errorf("%s: AllocOrder(%v) has %d regs, want %d", m.Name, c, len(m.AllocOrder(c)), nAlloc)
		}
		for _, r := range m.CallerSavedRegs(c) {
			if !m.CallerSaved(r) || m.RegClass(r) != c || !m.Allocatable(r) {
				t.Errorf("%s: CallerSavedRegs(%v) wrong for %s", m.Name, c, m.RegName(r))
			}
		}
		for _, r := range m.CalleeSavedRegs(c) {
			if m.CallerSaved(r) || m.RegClass(r) != c || !m.Allocatable(r) {
				t.Errorf("%s: CalleeSavedRegs(%v) wrong for %s", m.Name, c, m.RegName(r))
			}
		}
		ret := m.RetReg(c)
		if m.RegClass(ret) != c {
			t.Errorf("%s: RetReg(%v) has class %v", m.Name, c, m.RegClass(ret))
		}
		params := make(map[Reg]bool)
		for _, r := range m.ParamRegs(c) {
			if m.RegClass(r) != c {
				t.Errorf("%s: ParamRegs(%v) contains %s of class %v", m.Name, c, m.RegName(r), m.RegClass(r))
			}
			if params[r] {
				t.Errorf("%s: ParamRegs(%v) repeats %s", m.Name, c, m.RegName(r))
			}
			params[r] = true
		}
	}
}

func TestParseStrict(t *testing.T) {
	// Machine specs arrive from untrusted daemon clients: the parse
	// must be exact (no trailing garbage aliasing distinct spec
	// strings onto one machine) and size-bounded.
	for _, bad := range []string{
		"tiny:6,4xyz", "tiny:6x,4", "tiny:6, 4", "tiny:6",
		"tiny:6,4,2", "tiny:1000000000,2000000", "tiny:4,2000",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed or oversized spec", bad)
		}
	}
	m, err := Parse("tiny:6,4")
	if err != nil || m.NumRegs() != 10 {
		t.Fatalf("Parse(tiny:6,4) = %v, %v", m, err)
	}
	if _, err := Parse(fmt.Sprintf("tiny:%d,%d", MaxTinyRegs, MaxTinyRegs)); err != nil {
		t.Errorf("Parse rejected the documented MaxTinyRegs bound: %v", err)
	}
}

func TestMachineSpec(t *testing.T) {
	// Spec is the machine component of content-addressed cache keys:
	// equal machines must produce equal specs, and any convention
	// difference must show up.
	if Alpha().Spec() != Alpha().Spec() {
		t.Error("Alpha Spec not deterministic")
	}
	specs := make(map[string]string)
	for _, name := range PresetNames() {
		m, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := specs[m.Spec()]; dup {
			t.Errorf("presets %s and %s share a Spec", prev, name)
		}
		specs[m.Spec()] = name
	}
	// Same shape, different save discipline: x86-8 and scratch-8 are
	// both 8/8 but must not collide.
	a, _ := Preset("x86-8")
	b, _ := Preset("scratch-8")
	if a.Spec() == b.Spec() {
		t.Error("x86-8 and scratch-8 Specs collide despite different conventions")
	}
}

func TestHostilePresets(t *testing.T) {
	// scratch-8: every register is caller-saved; nothing survives a
	// call in a register.
	m, err := Preset("scratch-8")
	if err != nil {
		t.Fatal(err)
	}
	checkConventions(t, m)
	for c := Class(0); c < NumClasses; c++ {
		if n := len(m.CalleeSavedRegs(c)); n != 0 {
			t.Errorf("scratch-8: %d callee-saved %v regs, want 0", n, c)
		}
		if got, want := len(m.CallerSavedRegs(c)), len(m.AllocOrder(c)); got != want {
			t.Errorf("scratch-8: %d caller-saved %v regs, want %d (all)", got, c, want)
		}
	}

	// narrow-1: one register per file carries the whole convention —
	// it is the only parameter register and the return register.
	m, err = Preset("narrow-1")
	if err != nil {
		t.Fatal(err)
	}
	checkConventions(t, m)
	for c := Class(0); c < NumClasses; c++ {
		params := m.ParamRegs(c)
		if len(params) != 1 {
			t.Fatalf("narrow-1: %d %v param regs, want 1", len(params), c)
		}
		if params[0] != m.RetReg(c) {
			t.Errorf("narrow-1: %v param reg %s is not the return register %s",
				c, m.RegName(params[0]), m.RegName(m.RetReg(c)))
		}
		if !m.CallerSaved(params[0]) {
			t.Errorf("narrow-1: %v convention register must be caller-saved", c)
		}
		// The shared convention register must appear exactly once in
		// the allocation order (the finish() dedupe).
		n := 0
		for _, r := range m.AllocOrder(c) {
			if r == params[0] {
				n++
			}
		}
		if n != 1 {
			t.Errorf("narrow-1: convention register appears %d times in AllocOrder(%v)", n, c)
		}
	}
}

func TestAlphaShape(t *testing.T) {
	m := Alpha()
	if m.NumRegs() != 64 {
		t.Fatalf("NumRegs = %d, want 64", m.NumRegs())
	}
	checkConventions(t, m)
	if len(m.ParamRegs(ClassInt)) != 6 || len(m.ParamRegs(ClassFloat)) != 6 {
		t.Fatalf("Alpha passes 6 arguments per file, got %d/%d",
			len(m.ParamRegs(ClassInt)), len(m.ParamRegs(ClassFloat)))
	}
	// r31 and f31 are the zero registers; sp/gp/at/ra are reserved too.
	for _, name := range []string{"r26", "r28", "r29", "r30", "r31", "f31"} {
		found := false
		for r := 0; r < m.NumRegs(); r++ {
			if m.RegName(Reg(r)) == name {
				found = true
				if m.Allocatable(Reg(r)) {
					t.Errorf("%s must not be allocatable", name)
				}
			}
		}
		if !found {
			t.Errorf("register %s missing", name)
		}
	}
	// The scratch picker needs at least two caller-saved registers that
	// are neither parameter nor return registers at the END of the
	// caller-saved list (PickScratch takes the last two).
	for c := Class(0); c < NumClasses; c++ {
		cs := m.CallerSavedRegs(c)
		if len(cs) < 2 {
			t.Fatalf("class %v: %d caller-saved regs", c, len(cs))
		}
		conv := map[Reg]bool{m.RetReg(c): true}
		for _, r := range m.ParamRegs(c) {
			conv[r] = true
		}
		for _, r := range cs[len(cs)-2:] {
			if conv[r] {
				t.Errorf("class %v: scratch candidate %s is a convention register", c, m.RegName(r))
			}
		}
	}
}

func TestTinyShapes(t *testing.T) {
	for _, tc := range []struct{ ni, nf int }{{3, 2}, {4, 2}, {5, 3}, {6, 4}, {8, 6}, {10, 6}} {
		m := Tiny(tc.ni, tc.nf)
		if m.NumRegs() != tc.ni+tc.nf {
			t.Fatalf("Tiny(%d,%d): NumRegs = %d", tc.ni, tc.nf, m.NumRegs())
		}
		checkConventions(t, m)
		if got := len(m.AllocOrder(ClassInt)); got != tc.ni {
			t.Errorf("Tiny(%d,%d): %d allocatable ints", tc.ni, tc.nf, got)
		}
		if len(m.ParamRegs(ClassInt)) < 2 && tc.ni >= 3 {
			t.Errorf("Tiny(%d,%d): %d int param regs, want ≥ 2", tc.ni, tc.nf, len(m.ParamRegs(ClassInt)))
		}
	}
	// The conventions the test-suite machines rely on.
	m := Tiny(8, 4)
	if len(m.CalleeSavedRegs(ClassInt)) < 2 {
		t.Errorf("Tiny(8,4): %d callee-saved ints, want ≥ 2", len(m.CalleeSavedRegs(ClassInt)))
	}
	if len(m.CallerSavedRegs(ClassInt)) < 4 {
		t.Errorf("Tiny(8,4): %d caller-saved ints, want ≥ 4", len(m.CallerSavedRegs(ClassInt)))
	}
}

func TestTinyTooSmallPanics(t *testing.T) {
	for _, tc := range []struct{ ni, nf int }{{2, 2}, {3, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Tiny(%d,%d) did not panic", tc.ni, tc.nf)
				}
			}()
			Tiny(tc.ni, tc.nf)
		}()
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	want := []string{"alpha", "int-heavy", "narrow-1", "risc-16", "scratch-8", "tiny", "wide-64", "x86-8"}
	if len(names) != len(want) {
		t.Fatalf("PresetNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("PresetNames() = %v, want %v", names, want)
		}
	}
	shapes := map[string]struct{ ni, nf int }{
		"alpha":     {32, 32},
		"x86-8":     {8, 8},
		"risc-16":   {16, 16},
		"wide-64":   {64, 64},
		"int-heavy": {24, 4},
		"scratch-8": {8, 8},
		"narrow-1":  {6, 4},
		"tiny":      {6, 4},
	}
	for _, name := range names {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if m.Name != name && name != "tiny" { // tiny names itself "tiny(6,4)"
			t.Errorf("Preset(%q).Name = %q", name, m.Name)
		}
		checkConventions(t, m)
		sh := shapes[name]
		if got := len(m.byClass[ClassInt]); got != sh.ni {
			t.Errorf("%s: %d int regs, want %d", name, got, sh.ni)
		}
		if got := len(m.byClass[ClassFloat]); got != sh.nf {
			t.Errorf("%s: %d float regs, want %d", name, got, sh.nf)
		}
		// Every preset must support the workload generator's intrinsic
		// calls: at least one parameter register per file (puti/fsqrt).
		// The two-argument helper additionally needs two integer
		// parameter registers; progs.Random degrades it to intrinsic
		// calls on machines (narrow-1) that lack them.
		if len(m.ParamRegs(ClassInt)) < 1 {
			t.Errorf("%s: no int param reg", name)
		}
		if len(m.ParamRegs(ClassFloat)) < 1 {
			t.Errorf("%s: no float param reg", name)
		}
	}
	if _, err := Preset("no-such-machine"); err == nil {
		t.Error("Preset accepted an unknown name")
	}
}

func TestNewValidation(t *testing.T) {
	base := Config{
		Name: "ok", NumInt: 3, NumFloat: 2,
		CallerSavedInt: []int{0, 1}, CallerSavedFloat: []int{0},
		IntParams: []int{1}, FloatParams: []int{1},
		IntRet: 0, FloatRet: 0,
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"no-int-regs":      func(c *Config) { c.NumInt = 0 },
		"bad-caller-index": func(c *Config) { c.CallerSavedInt = []int{5} },
		"bad-param-index":  func(c *Config) { c.FloatParams = []int{9} },
		"bad-ret-index":    func(c *Config) { c.IntRet = -1 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", name)
		}
	}
}

func TestRegAndNames(t *testing.T) {
	m := Tiny(5, 3)
	if m.RegName(m.Reg(ClassInt, 2)) != "r2" {
		t.Errorf("Reg(int,2) = %s", m.RegName(m.Reg(ClassInt, 2)))
	}
	if m.RegName(m.Reg(ClassFloat, 1)) != "f1" {
		t.Errorf("Reg(float,1) = %s", m.RegName(m.Reg(ClassFloat, 1)))
	}
	if m.RegClass(m.Reg(ClassFloat, 0)) != ClassFloat {
		t.Error("float file misclassified")
	}
	if !strings.Contains(m.Name, "tiny") {
		t.Errorf("Name = %q", m.Name)
	}
	if got := m.RegName(NoReg); !strings.Contains(got, "?") {
		t.Errorf("RegName(NoReg) = %q, want a placeholder", got)
	}
	if ClassInt.String() != "int" || ClassFloat.String() != "float" {
		t.Errorf("class names %q/%q", ClassInt.String(), ClassFloat.String())
	}
}
