// Package target describes the register targets the allocators compile
// for: the Alpha-like machine of the paper's experiments (§3) and a
// parameterizable "tiny" machine used to force spilling in tests.
//
// A Machine is immutable after construction. Registers are numbered
// densely from 0 across all classes; the integer file comes first, then
// the floating-point file. Conventions (caller- vs. callee-saved,
// parameter and return registers, allocatability) are fixed per machine
// and exposed through accessor methods so allocators never hard-code
// them.
package target

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Class is a register file: every temporary and every register belongs
// to exactly one class, and allocation never crosses classes.
type Class uint8

const (
	// ClassInt is the integer register file.
	ClassInt Class = iota
	// ClassFloat is the floating-point register file.
	ClassFloat
	// NumClasses is the number of register files.
	NumClasses = 2
)

func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFloat:
		return "float"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Reg names a physical register by its dense machine-wide index.
type Reg int16

// NoReg marks the absence of a register.
const NoReg Reg = -1

// RegInfo describes one physical register.
type RegInfo struct {
	// Name is the assembly-level name ("r4", "f0").
	Name string
	// Class is the register file the register belongs to.
	Class Class
	// CallerSaved registers may be clobbered by a call; callee-saved
	// registers must be preserved by any procedure that uses them.
	CallerSaved bool
	// Allocatable registers may be assigned to temporaries. Reserved
	// registers (stack pointer, zero register, …) are not.
	Allocatable bool
}

// Machine is an immutable register-target description.
type Machine struct {
	// Name identifies the machine in output ("alpha", "tiny(6,4)").
	Name string

	regs []RegInfo
	// Derived tables, built once by finish().
	byClass     [NumClasses][]Reg
	allocOrder  [NumClasses][]Reg
	callerSaved [NumClasses][]Reg
	calleeSaved [NumClasses][]Reg
	paramRegs   [NumClasses][]Reg
	retReg      [NumClasses]Reg
}

// NumRegs returns the total number of physical registers (all classes).
func (m *Machine) NumRegs() int { return len(m.regs) }

// RegName returns r's assembly-level name.
func (m *Machine) RegName(r Reg) string {
	if int(r) < 0 || int(r) >= len(m.regs) {
		return fmt.Sprintf("R?%d", int(r))
	}
	return m.regs[r].Name
}

// RegClass returns the register file r belongs to.
func (m *Machine) RegClass(r Reg) Class { return m.regs[r].Class }

// CallerSaved reports whether r may be clobbered by a call.
func (m *Machine) CallerSaved(r Reg) bool { return m.regs[r].CallerSaved }

// Allocatable reports whether r may be assigned to a temporary.
func (m *Machine) Allocatable(r Reg) bool { return m.regs[r].Allocatable }

// Reg returns the i-th register of class c, counting reserved registers
// (the within-file numbering: Reg(ClassFloat, 3) is "f3").
func (m *Machine) Reg(c Class, i int) Reg { return m.byClass[c][i] }

// AllocOrder returns every allocatable register of class c in allocation
// preference order: plain caller-saved temporaries first, then the
// return and parameter registers, then callee-saved registers (whose
// first use obligates a save/restore pair). Callers must not mutate the
// returned slice.
func (m *Machine) AllocOrder(c Class) []Reg { return m.allocOrder[c] }

// CallerSavedRegs returns the allocatable caller-saved registers of
// class c in ascending register order. Callers must not mutate the
// returned slice.
func (m *Machine) CallerSavedRegs(c Class) []Reg { return m.callerSaved[c] }

// CalleeSavedRegs returns the allocatable callee-saved registers of
// class c in ascending register order. Callers must not mutate the
// returned slice.
func (m *Machine) CalleeSavedRegs(c Class) []Reg { return m.calleeSaved[c] }

// ParamRegs returns the parameter registers of class c in argument
// order. Callers must not mutate the returned slice.
func (m *Machine) ParamRegs(c Class) []Reg { return m.paramRegs[c] }

// RetReg returns the return-value register of class c.
func (m *Machine) RetReg(c Class) Reg { return m.retReg[c] }

// finish builds the derived tables from m.regs, m.paramRegs and
// m.retReg. The allocation order is: allocatable caller-saved registers
// that carry no convention role, then the return register, then the
// parameter registers, then callee-saved registers.
func (m *Machine) finish() *Machine {
	conv := make(map[Reg]bool)
	for c := Class(0); c < NumClasses; c++ {
		conv[m.retReg[c]] = true
		for _, r := range m.paramRegs[c] {
			conv[r] = true
		}
	}
	for i := range m.regs {
		r := Reg(i)
		c := m.regs[i].Class
		m.byClass[c] = append(m.byClass[c], r)
		if !m.regs[i].Allocatable {
			continue
		}
		if m.regs[i].CallerSaved {
			m.callerSaved[c] = append(m.callerSaved[c], r)
		} else {
			m.calleeSaved[c] = append(m.calleeSaved[c], r)
		}
	}
	for c := Class(0); c < NumClasses; c++ {
		var plain []Reg
		for _, r := range m.callerSaved[c] {
			if !conv[r] {
				plain = append(plain, r)
			}
		}
		order := append([]Reg{}, plain...)
		// Convention registers may coincide (narrow-1's single register
		// is both parameter and return), so dedupe while appending.
		seen := make(map[Reg]bool, len(order)+4)
		for _, r := range order {
			seen[r] = true
		}
		for _, r := range append(append([]Reg{m.retReg[c]}, m.paramRegs[c]...), m.calleeSaved[c]...) {
			if !seen[r] {
				seen[r] = true
				order = append(order, r)
			}
		}
		m.allocOrder[c] = order
	}
	return m
}

// Spec renders the machine as a stable, convention-complete textual
// description: every register with its class, save discipline and
// allocatability, followed by the parameter and return assignments of
// each file. Two machines allocate identically iff their Specs are
// equal, which makes Spec the machine component of content-addressed
// cache keys (regalloc.Engine.CacheKey, internal/serve).
func (m *Machine) Spec() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine %s regs=%d\n", m.Name, len(m.regs))
	for i, r := range m.regs {
		fmt.Fprintf(&sb, "%d %s class=%s caller=%t alloc=%t\n",
			i, r.Name, r.Class, r.CallerSaved, r.Allocatable)
	}
	for c := Class(0); c < NumClasses; c++ {
		fmt.Fprintf(&sb, "%s params=%v ret=%d\n", c, m.paramRegs[c], m.retReg[c])
	}
	return sb.String()
}

// Config describes a custom machine for New: register counts per file,
// which within-file indices are caller-saved (the rest are
// callee-saved), and the calling convention. Every register of a custom
// machine is allocatable.
type Config struct {
	Name             string
	NumInt, NumFloat int
	// CallerSavedInt / CallerSavedFloat list the within-file indices
	// that calls clobber; all other registers are callee-saved.
	CallerSavedInt   []int
	CallerSavedFloat []int
	// IntParams / FloatParams are within-file indices in argument order.
	IntParams   []int
	FloatParams []int
	// IntRet / FloatRet are the within-file indices of the return
	// registers.
	IntRet, FloatRet int
}

// New builds a machine from a Config.
func New(cfg Config) (*Machine, error) {
	if cfg.NumInt < 1 || cfg.NumFloat < 1 {
		return nil, fmt.Errorf("target: machine %q needs at least one register per file", cfg.Name)
	}
	m := &Machine{Name: cfg.Name}
	for _, file := range []struct {
		class       Class
		prefix      string
		n           int
		callerSaved []int
		params      []int
		ret         int
	}{
		{ClassInt, "r", cfg.NumInt, cfg.CallerSavedInt, cfg.IntParams, cfg.IntRet},
		{ClassFloat, "f", cfg.NumFloat, cfg.CallerSavedFloat, cfg.FloatParams, cfg.FloatRet},
	} {
		base := len(m.regs)
		caller := make([]bool, file.n)
		for _, i := range file.callerSaved {
			if i < 0 || i >= file.n {
				return nil, fmt.Errorf("target: machine %q: caller-saved index %d out of range [0,%d)", cfg.Name, i, file.n)
			}
			caller[i] = true
		}
		for i := 0; i < file.n; i++ {
			m.regs = append(m.regs, RegInfo{
				Name:        fmt.Sprintf("%s%d", file.prefix, i),
				Class:       file.class,
				CallerSaved: caller[i],
				Allocatable: true,
			})
		}
		if file.ret < 0 || file.ret >= file.n {
			return nil, fmt.Errorf("target: machine %q: return index %d out of range [0,%d)", cfg.Name, file.ret, file.n)
		}
		m.retReg[file.class] = Reg(base + file.ret)
		for _, i := range file.params {
			if i < 0 || i >= file.n {
				return nil, fmt.Errorf("target: machine %q: parameter index %d out of range [0,%d)", cfg.Name, i, file.n)
			}
			m.paramRegs[file.class] = append(m.paramRegs[file.class], Reg(base+i))
		}
	}
	return m.finish(), nil
}

// MustNew is New, panicking on an invalid Config.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Alpha returns the Alpha-like machine of the paper's experiments: 32
// integer and 32 floating-point registers under the Digital Unix calling
// standard (v0 return, a0–a5 arguments, s0–s6 callee-saved, ra/at/gp/sp
// and both zero registers reserved).
func Alpha() *Machine {
	m := &Machine{Name: "alpha"}
	intReg := func(i int, caller, alloc bool) RegInfo {
		return RegInfo{Name: fmt.Sprintf("r%d", i), Class: ClassInt, CallerSaved: caller, Allocatable: alloc}
	}
	fltReg := func(i int, caller, alloc bool) RegInfo {
		return RegInfo{Name: fmt.Sprintf("f%d", i), Class: ClassFloat, CallerSaved: caller, Allocatable: alloc}
	}
	for i := 0; i < 32; i++ {
		var caller, alloc bool
		switch {
		case i == 0: // v0: return value
			caller, alloc = true, true
		case i <= 8: // t0–t7: temporaries
			caller, alloc = true, true
		case i <= 15: // s0–s6: callee-saved (incl. fp, free here)
			caller, alloc = false, true
		case i <= 21: // a0–a5: arguments
			caller, alloc = true, true
		case i <= 25: // t8–t11: temporaries
			caller, alloc = true, true
		case i == 27: // t12/pv: temporary
			caller, alloc = true, true
		default: // ra, at, gp, sp, zero: reserved
			caller, alloc = true, false
		}
		m.regs = append(m.regs, intReg(i, caller, alloc))
	}
	for i := 0; i < 32; i++ {
		var caller, alloc bool
		switch {
		case i == 31: // fzero: reserved
			caller, alloc = true, false
		case i >= 2 && i <= 9: // f2–f9: callee-saved
			caller, alloc = false, true
		default: // return, arguments, temporaries
			caller, alloc = true, true
		}
		m.regs = append(m.regs, fltReg(i, caller, alloc))
	}
	m.retReg[ClassInt] = 0
	m.retReg[ClassFloat] = 32
	for i := 16; i <= 21; i++ { // a0–a5
		m.paramRegs[ClassInt] = append(m.paramRegs[ClassInt], Reg(i))
		m.paramRegs[ClassFloat] = append(m.paramRegs[ClassFloat], Reg(32+i))
	}
	return m.finish()
}

// Tiny returns a small machine with nInt integer and nFloat float
// registers, used to force spilling. Within each file, register 0 is the
// return register, the next one or two registers pass parameters, the
// trailing (n-2)/3 registers are callee-saved, and everything in between
// is a caller-saved temporary. All registers are allocatable. nInt must
// be at least 3 and nFloat at least 2 so the calling convention fits.
func Tiny(nInt, nFloat int) *Machine {
	m, err := NewTiny(nInt, nFloat)
	if err != nil {
		panic(err)
	}
	return m
}

// presets are the named machine shapes beyond Alpha and Tiny that the
// conformance grid sweeps: small CISC-like, mid RISC-like, very wide, a
// file-skewed integer-heavy shape, and two convention-hostile shapes
// (scratch-8 with no callee-saved registers at all, narrow-1 with a
// single register doing both parameter and return duty per file). The
// random program generator adapts its helper-call emission to machines
// with fewer than two integer parameter registers (progs.Random), so
// every preset can run every workload profile.
var presets = map[string]func() *Machine{
	"alpha": Alpha,
	// x86-8: the classic 8/8 two-file squeeze. Like 32-bit x86, most of
	// the integer file is caller-saved scratch with a thin callee-saved
	// band, so call-heavy code is forced to spill or save.
	"x86-8": func() *Machine {
		return MustNew(Config{
			Name:   "x86-8",
			NumInt: 8, NumFloat: 8,
			CallerSavedInt:   []int{0, 1, 2, 3},
			CallerSavedFloat: []int{0, 1, 2, 3, 4, 5, 6, 7},
			IntParams:        []int{1, 2},
			FloatParams:      []int{1, 2},
			IntRet:           0, FloatRet: 0,
		})
	},
	// risc-16: a mid-size RISC split half caller-/half callee-saved, in
	// the MIPS/RISC-V tradition of s- and t-register bands.
	"risc-16": func() *Machine {
		return MustNew(Config{
			Name:   "risc-16",
			NumInt: 16, NumFloat: 16,
			CallerSavedInt:   []int{0, 1, 2, 3, 4, 5, 6, 7},
			CallerSavedFloat: []int{0, 1, 2, 3, 4, 5, 6, 7},
			IntParams:        []int{1, 2, 3, 4},
			FloatParams:      []int{1, 2},
			IntRet:           0, FloatRet: 0,
		})
	},
	// wide-64: a register-rich machine where spilling should be nearly
	// impossible; allocators that spill here are losing to bookkeeping,
	// not pressure.
	"wide-64": func() *Machine {
		cs := make([]int, 48)
		for i := range cs {
			cs[i] = i
		}
		return MustNew(Config{
			Name:   "wide-64",
			NumInt: 64, NumFloat: 64,
			CallerSavedInt:   cs,
			CallerSavedFloat: cs,
			IntParams:        []int{1, 2, 3, 4, 5, 6, 7, 8},
			FloatParams:      []int{1, 2, 3, 4},
			IntRet:           0, FloatRet: 0,
		})
	},
	// int-heavy: a skewed shape — a comfortable integer file next to a
	// starved four-register float file (the minimum that leaves a
	// three-operand float op room to reload both spilled sources beside
	// the convention registers), so float-heavy workloads spill hard in
	// one class while the other idles.
	"int-heavy": func() *Machine {
		return MustNew(Config{
			Name:   "int-heavy",
			NumInt: 24, NumFloat: 4,
			CallerSavedInt:   []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
			CallerSavedFloat: []int{0, 1, 2},
			IntParams:        []int{1, 2, 3, 4},
			FloatParams:      []int{1},
			IntRet:           0, FloatRet: 0,
		})
	},
	// scratch-8: zero callee-saved registers — every register is call-
	// clobbered scratch. Nothing survives a call in a register, so any
	// value live across a call must be spilled; allocators that lean on
	// the callee-saved band for long lifetimes get no help at all.
	"scratch-8": func() *Machine {
		return MustNew(Config{
			Name:   "scratch-8",
			NumInt: 8, NumFloat: 8,
			CallerSavedInt:   []int{0, 1, 2, 3, 4, 5, 6, 7},
			CallerSavedFloat: []int{0, 1, 2, 3, 4, 5, 6, 7},
			IntParams:        []int{1, 2},
			FloatParams:      []int{1},
			IntRet:           0, FloatRet: 0,
		})
	},
	// narrow-1: a single convention register per file — register 0 is
	// simultaneously the only parameter register and the return
	// register (and caller-saved). Every call funnels through one
	// register, so argument setup, result readout and poisoning all
	// collide on it; resolution and eviction around calls must be
	// exactly right.
	"narrow-1": func() *Machine {
		return MustNew(Config{
			Name:   "narrow-1",
			NumInt: 6, NumFloat: 4,
			CallerSavedInt:   []int{0, 1, 2},
			CallerSavedFloat: []int{0, 1},
			IntParams:        []int{0},
			FloatParams:      []int{0},
			IntRet:           0, FloatRet: 0,
		})
	},
	"tiny": func() *Machine { return Tiny(6, 4) },
}

// Preset returns the named machine preset. The names cover the paper's
// Alpha plus the conformance grid's diverse shapes: "alpha", "x86-8",
// "risc-16", "wide-64", "int-heavy", "scratch-8" (no callee-saved
// registers), "narrow-1" (one shared parameter/return register per
// file), and "tiny" (the tiny(6,4) spill forcer).
func Preset(name string) (*Machine, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("target: unknown machine preset %q (have %v)", name, PresetNames())
	}
	return mk(), nil
}

// Parse resolves the machine-spec syntax every tool and harness shares:
// a preset name or the parameterized "tiny:<ints>,<floats>" form. The
// parse is strict (no trailing garbage — every spec string names
// exactly one machine, which content-addressed caching relies on) and
// tiny sizes are bounded by MaxTinyRegs, since specs arrive from
// untrusted daemon clients.
func Parse(name string) (*Machine, error) {
	if rest, ok := strings.CutPrefix(name, "tiny:"); ok {
		is, fs, ok := strings.Cut(rest, ",")
		if !ok {
			return nil, fmt.Errorf("target: bad machine %q (want tiny:<ints>,<floats>)", name)
		}
		ni, err1 := strconv.Atoi(is)
		nf, err2 := strconv.Atoi(fs)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("target: bad machine %q (want tiny:<ints>,<floats>)", name)
		}
		return NewTiny(ni, nf)
	}
	return Preset(name)
}

// MaxTinyRegs bounds each register file of a parameterized tiny
// machine: far beyond any realistic target, small enough that a hostile
// spec cannot allocate an enormous Machine.
const MaxTinyRegs = 1024

// PresetNames returns every preset name, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewTiny is Tiny with the size constraint reported as an error instead
// of a panic, for machines built from user input.
func NewTiny(nInt, nFloat int) (*Machine, error) {
	if nInt < 3 || nFloat < 2 {
		return nil, fmt.Errorf("target: tiny(%d,%d) is too small for the calling convention (need ≥ 3 int and ≥ 2 float registers)", nInt, nFloat)
	}
	if nInt > MaxTinyRegs || nFloat > MaxTinyRegs {
		return nil, fmt.Errorf("target: tiny(%d,%d) exceeds the %d-register file bound", nInt, nFloat, MaxTinyRegs)
	}
	cfg := Config{Name: fmt.Sprintf("tiny(%d,%d)", nInt, nFloat), NumInt: nInt, NumFloat: nFloat}
	file := func(n int) (caller, params []int) {
		for i := 0; i < n-(n-2)/3; i++ {
			caller = append(caller, i)
		}
		nParam := 2
		if n-1 < nParam {
			nParam = n - 1
		}
		for i := 1; i <= nParam; i++ {
			params = append(params, i)
		}
		return caller, params
	}
	cfg.CallerSavedInt, cfg.IntParams = file(nInt)
	cfg.CallerSavedFloat, cfg.FloatParams = file(nFloat)
	return New(cfg)
}
