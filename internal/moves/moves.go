// Package moves sequences parallel location transfers into an equivalent
// ordered list of move/load/store instructions.
//
// The paper's resolution phase must emit, on each CFG edge, a set of
// loads, stores, and moves "in the semantically-correct order, even in
// the case where two (or more) temporaries swap their allocated
// registers" (§2.4) — the same problem as replacing SSA phi-nodes by
// moves. Each temporary has at most one transfer per edge, and its spill
// slot belongs to it alone, so the transfer graph is a set of chains plus
// simple register cycles. Chains are emitted leaf-first; cycles are
// broken either through a scratch register or through the moving
// temporary's own spill slot.
package moves

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/target"
)

// LocKind discriminates transfer endpoints.
type LocKind uint8

const (
	// LocReg is a physical register.
	LocReg LocKind = iota
	// LocSlot is a stack slot.
	LocSlot
)

// Loc is a transfer endpoint: a register or a stack slot.
type Loc struct {
	Kind LocKind
	Reg  target.Reg
	Slot int
}

// RegLoc returns a register location.
func RegLoc(r target.Reg) Loc { return Loc{Kind: LocReg, Reg: r} }

// SlotLoc returns a stack-slot location.
func SlotLoc(s int) Loc { return Loc{Kind: LocSlot, Slot: s} }

func (l Loc) String() string {
	if l.Kind == LocReg {
		return fmt.Sprintf("r%d", l.Reg)
	}
	return fmt.Sprintf("slot%d", l.Slot)
}

// Transfer moves the value of Temp from Src to Dst. Class is the
// temporary's register file (needed to pick move opcodes and scratch
// registers). Slot endpoints must be the temporary's own spill home.
type Transfer struct {
	Temp  ir.Temp
	Class target.Class
	Src   Loc
	Dst   Loc
}

// Tags selects the spill classification for emitted instructions.
type Tags struct {
	Load  ir.Tag
	Store ir.Tag
	Move  ir.Tag
}

// ScratchFunc returns a register of the given class that is dead at the
// transfer point and not an endpoint of any pending transfer, or ok=false
// if none exists (in which case cycles are broken through memory).
type ScratchFunc func(c target.Class) (target.Reg, bool)

// Sequence orders the transfers and emits the corresponding instructions.
// SlotFor must return the spill slot of a temporary; it is consulted only
// when a register cycle must be broken through memory and the cycle's
// chosen temporary has a slot endpoint already or needs its home slot.
func Sequence(ts []Transfer, scratch ScratchFunc, slotFor func(ir.Temp) int, tags Tags) []ir.Instr {
	if len(ts) == 0 {
		return nil
	}
	pending := make([]Transfer, len(ts))
	copy(pending, ts)
	// Validate uniqueness of sources and destinations: the allocator
	// guarantees one location holds one value and one transfer per temp.
	srcCount := make(map[Loc]int, len(pending))
	dstSeen := make(map[Loc]bool, len(pending))
	for _, t := range pending {
		if t.Src == t.Dst {
			continue
		}
		srcCount[t.Src]++
		if dstSeen[t.Dst] {
			panic(fmt.Sprintf("moves: duplicate destination %v", t.Dst))
		}
		dstSeen[t.Dst] = true
	}

	var out []ir.Instr
	emit := func(t Transfer) {
		switch {
		case t.Src.Kind == LocSlot && t.Dst.Kind == LocReg:
			out = append(out, ir.Instr{
				Op:   ir.SpillLd,
				Tag:  tags.Load,
				Defs: []ir.Operand{ir.RegOp(t.Dst.Reg)},
				Uses: []ir.Operand{ir.SlotOp(t.Src.Slot, t.Temp)},
			})
		case t.Src.Kind == LocReg && t.Dst.Kind == LocSlot:
			out = append(out, ir.Instr{
				Op:   ir.SpillSt,
				Tag:  tags.Store,
				Uses: []ir.Operand{ir.RegOp(t.Src.Reg), ir.SlotOp(t.Dst.Slot, t.Temp)},
			})
		case t.Src.Kind == LocReg && t.Dst.Kind == LocReg:
			op := ir.Mov
			if t.Class == target.ClassFloat {
				op = ir.FMov
			}
			out = append(out, ir.Instr{
				Op:   op,
				Tag:  tags.Move,
				Defs: []ir.Operand{ir.RegOp(t.Dst.Reg)},
				Uses: []ir.Operand{ir.RegOp(t.Src.Reg)},
			})
		default:
			panic("moves: slot-to-slot transfer")
		}
	}

	// Drop no-op transfers.
	live := pending[:0]
	for _, t := range pending {
		if t.Src != t.Dst {
			live = append(live, t)
		}
	}
	pending = live

	for len(pending) > 0 {
		progressed := false
		for i := 0; i < len(pending); {
			t := pending[i]
			if srcCount[t.Dst] > 0 {
				i++
				continue // destination still feeds another transfer
			}
			emit(t)
			srcCount[t.Src]--
			pending[i] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			progressed = true
		}
		if progressed || len(pending) == 0 {
			continue
		}
		// Every pending destination is also a pending source: register
		// cycles only (slots have out-degree ≤ 1 into their own temp's
		// single transfer, so they cannot appear in a cycle).
		t := pending[0]
		if t.Src.Kind != LocReg || t.Dst.Kind != LocReg {
			panic(fmt.Sprintf("moves: non-register cycle through %v -> %v", t.Src, t.Dst))
		}
		if r, ok := scratch(t.Class); ok {
			// Copy the cycle member aside, redirect its transfer.
			emit(Transfer{Temp: t.Temp, Class: t.Class, Src: t.Src, Dst: RegLoc(r)})
			srcCount[t.Src]--
			srcCount[RegLoc(r)]++
			pending[0].Src = RegLoc(r)
		} else {
			// Break through the temporary's own spill slot.
			slot := slotFor(t.Temp)
			emit(Transfer{Temp: t.Temp, Class: t.Class, Src: t.Src, Dst: SlotLoc(slot)})
			srcCount[t.Src]--
			srcCount[SlotLoc(slot)]++
			pending[0].Src = SlotLoc(slot)
		}
	}
	return out
}
