package moves

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
)

var tags = Tags{Load: ir.TagResolveLoad, Store: ir.TagResolveStore, Move: ir.TagResolveMove}

// simulate executes emitted instructions over a symbolic state and
// returns the final contents of every location.
func simulate(init map[Loc]int, code []ir.Instr) map[Loc]int {
	st := map[Loc]int{}
	for k, v := range init {
		st[k] = v
	}
	get := func(o ir.Operand) int {
		if o.Kind == ir.KindReg {
			return st[RegLoc(o.Reg)]
		}
		return st[SlotLoc(int(o.Imm))]
	}
	set := func(o ir.Operand, v int) {
		if o.Kind == ir.KindReg {
			st[RegLoc(o.Reg)] = v
		} else {
			st[SlotLoc(int(o.Imm))] = v
		}
	}
	for i := range code {
		in := &code[i]
		switch in.Op {
		case ir.Mov, ir.FMov, ir.SpillLd:
			set(in.Defs[0], get(in.Uses[0]))
		case ir.SpillSt:
			set(in.Uses[1], get(in.Uses[0]))
		default:
			panic("unexpected op " + in.Op.String())
		}
	}
	return st
}

// checkTransfers verifies that sequencing the transfers moves every value
// where it should.
func checkTransfers(t *testing.T, ts []Transfer, scratch ScratchFunc) {
	t.Helper()
	init := map[Loc]int{}
	for i, tr := range ts {
		init[tr.Src] = i + 1
	}
	slotFor := func(tmp ir.Temp) int { return 100 + int(tmp) }
	code := Sequence(ts, scratch, slotFor, tags)
	final := simulate(init, code)
	for i, tr := range ts {
		if final[tr.Dst] != i+1 {
			t.Fatalf("transfer %d: dst %v = %d, want %d\ncode: %v",
				i, tr.Dst, final[tr.Dst], i+1, code)
		}
	}
}

func noScratch(target.Class) (target.Reg, bool) { return target.NoReg, false }

func reg(i int) Loc  { return RegLoc(target.Reg(i)) }
func slot(i int) Loc { return SlotLoc(i) }

func TestChains(t *testing.T) {
	checkTransfers(t, []Transfer{
		{Temp: 0, Src: reg(0), Dst: reg(1)},
		{Temp: 1, Src: reg(1), Dst: reg(2)},
		{Temp: 2, Src: reg(2), Dst: reg(3)},
	}, noScratch)
}

func TestSwapWithScratch(t *testing.T) {
	used := false
	scratch := func(target.Class) (target.Reg, bool) {
		used = true
		return target.Reg(9), true
	}
	checkTransfers(t, []Transfer{
		{Temp: 0, Src: reg(0), Dst: reg(1)},
		{Temp: 1, Src: reg(1), Dst: reg(0)},
	}, scratch)
	if !used {
		t.Fatal("cycle should have used the scratch register")
	}
}

func TestSwapWithoutScratchGoesThroughMemory(t *testing.T) {
	ts := []Transfer{
		{Temp: 0, Src: reg(0), Dst: reg(1)},
		{Temp: 1, Src: reg(1), Dst: reg(0)},
	}
	code := Sequence(ts, noScratch, func(tmp ir.Temp) int { return 100 + int(tmp) }, tags)
	hasStore := false
	for i := range code {
		if code[i].Op == ir.SpillSt {
			hasStore = true
		}
	}
	if !hasStore {
		t.Fatal("memory cycle break expected without scratch")
	}
	checkTransfers(t, ts, noScratch)
}

func TestThreeCycle(t *testing.T) {
	checkTransfers(t, []Transfer{
		{Temp: 0, Src: reg(0), Dst: reg(1)},
		{Temp: 1, Src: reg(1), Dst: reg(2)},
		{Temp: 2, Src: reg(2), Dst: reg(0)},
	}, noScratch)
}

func TestLoadsAndStoresMix(t *testing.T) {
	checkTransfers(t, []Transfer{
		{Temp: 0, Src: slot(100), Dst: reg(0)},
		{Temp: 1, Src: reg(2), Dst: slot(101)},
		{Temp: 2, Src: reg(3), Dst: reg(2)},
		{Temp: 3, Src: reg(0), Dst: reg(3)}, // reg 0 is also a load target
	}, noScratch)
}

func TestSharedSource(t *testing.T) {
	// One register feeds both a move and a store (the resolution phase's
	// consistency-store case).
	init := map[Loc]int{reg(0): 7}
	code := Sequence([]Transfer{
		{Temp: 0, Src: reg(0), Dst: reg(1)},
		{Temp: 0, Src: reg(0), Dst: slot(100)},
	}, noScratch, func(ir.Temp) int { return 100 }, tags)
	final := simulate(init, code)
	if final[reg(1)] != 7 || final[slot(100)] != 7 {
		t.Fatalf("shared source mishandled: %v", final)
	}
}

func TestSelfTransferDropped(t *testing.T) {
	code := Sequence([]Transfer{{Temp: 0, Src: reg(0), Dst: reg(0)}}, noScratch,
		func(ir.Temp) int { return 100 }, tags)
	if len(code) != 0 {
		t.Fatalf("self transfer should emit nothing, got %v", code)
	}
}

func TestTagsApplied(t *testing.T) {
	code := Sequence([]Transfer{
		{Temp: 0, Src: slot(100), Dst: reg(0)},
		{Temp: 1, Src: reg(1), Dst: slot(101)},
		{Temp: 2, Src: reg(2), Dst: reg(3)},
	}, noScratch, func(ir.Temp) int { return 0 }, tags)
	for i := range code {
		in := &code[i]
		switch in.Op {
		case ir.SpillLd:
			if in.Tag != ir.TagResolveLoad {
				t.Fatal("load tag wrong")
			}
		case ir.SpillSt:
			if in.Tag != ir.TagResolveStore {
				t.Fatal("store tag wrong")
			}
		case ir.Mov:
			if in.Tag != ir.TagResolveMove {
				t.Fatal("move tag wrong")
			}
		}
	}
}

func TestFloatClassUsesFMov(t *testing.T) {
	code := Sequence([]Transfer{
		{Temp: 0, Class: target.ClassFloat, Src: reg(10), Dst: reg(11)},
	}, noScratch, func(ir.Temp) int { return 0 }, tags)
	if len(code) != 1 || code[0].Op != ir.FMov {
		t.Fatalf("float transfer must use fmov, got %v", code)
	}
}

// TestMemoryMemoryChain: a value travels slot → register → register →
// slot; the chain must be emitted leaf-first so the intermediate
// registers are vacated before being overwritten.
func TestMemoryMemoryChain(t *testing.T) {
	checkTransfers(t, []Transfer{
		{Temp: 0, Src: slot(100), Dst: reg(0)},
		{Temp: 1, Src: reg(0), Dst: reg(1)},
		{Temp: 2, Src: reg(1), Dst: slot(102)},
	}, noScratch)
}

// TestSlotSelfTransferDropped: a slot-to-slot transfer is a panic in
// general (no addressing mode for it), but the degenerate self case is
// a no-op and must be dropped before that check fires.
func TestSlotSelfTransferDropped(t *testing.T) {
	code := Sequence([]Transfer{{Temp: 0, Src: slot(100), Dst: slot(100)}}, noScratch,
		func(ir.Temp) int { return 100 }, tags)
	if len(code) != 0 {
		t.Fatalf("slot self transfer should emit nothing, got %v", code)
	}
}

// TestFloatCycleThroughMemory: breaking a float swap without a scratch
// register must spill through the temporary's own slot, and every
// register-to-register move it emits must use the float opcode.
func TestFloatCycleThroughMemory(t *testing.T) {
	ts := []Transfer{
		{Temp: 0, Class: target.ClassFloat, Src: reg(10), Dst: reg(11)},
		{Temp: 1, Class: target.ClassFloat, Src: reg(11), Dst: reg(10)},
	}
	code := Sequence(ts, noScratch, func(tmp ir.Temp) int { return 100 + int(tmp) }, tags)
	sawStore := false
	for i := range code {
		switch code[i].Op {
		case ir.SpillSt:
			sawStore = true
		case ir.Mov:
			t.Fatalf("integer mov in a float cycle: %v", code)
		}
	}
	if !sawStore {
		t.Fatal("float cycle without scratch should break through memory")
	}
	checkTransfers(t, ts, noScratch)
}

// TestDuplicateDestinationPanics: two transfers writing one location is
// an allocator bug (one location holds one value); the sequencer must
// refuse loudly rather than emit order-dependent code.
func TestDuplicateDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate destination did not panic")
		}
	}()
	Sequence([]Transfer{
		{Temp: 0, Src: reg(0), Dst: reg(2)},
		{Temp: 1, Src: reg(1), Dst: reg(2)},
	}, noScratch, func(ir.Temp) int { return 100 }, tags)
}

// TestSlotToSlotPanics: a non-degenerate memory-to-memory transfer has
// no single-instruction encoding and must be rejected.
func TestSlotToSlotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("slot-to-slot transfer did not panic")
		}
	}()
	Sequence([]Transfer{{Temp: 0, Src: slot(100), Dst: slot(101)}}, noScratch,
		func(ir.Temp) int { return 100 }, tags)
}

// TestRandomPermutations drives the sequencer with random permutations
// and partial permutations of registers plus slot endpoints.
func TestRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(8)
		perm := rng.Perm(n)
		var ts []Transfer
		usedDst := map[Loc]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				continue // partial
			}
			src, dst := reg(i), reg(perm[i])
			switch rng.Intn(4) {
			case 0:
				src = slot(200 + i) // load
			case 1:
				dst = slot(300 + i) // store (unique per temp)
			}
			if usedDst[dst] {
				continue
			}
			usedDst[dst] = true
			ts = append(ts, Transfer{Temp: ir.Temp(i), Src: src, Dst: dst})
		}
		var scratch ScratchFunc = noScratch
		if rng.Intn(2) == 0 {
			scratch = func(target.Class) (target.Reg, bool) { return target.Reg(99), true }
		}
		checkTransfers(t, ts, scratch)
	}
}
