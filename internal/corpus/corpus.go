// Package corpus is the mmap-backed streaming container for large sets
// of binary IR programs (internal/irbin frames): the storage side of
// the million-program throughput ladder. A corpus file is
//
//	header | meta | frame₀ frame₁ … frameₙ₋₁ | index
//
// with a fixed 32-byte header (magic, version, program count, index
// offset, meta length), a free-text meta string describing how the
// corpus was generated, the programs as concatenated self-delimiting
// irbin frames, and a trailing (offset, length) index — one 16-byte
// entry per program — enabling random access without walking frames.
//
// The index trails the data so the writer streams frames without
// knowing the count up front (the header is patched on Close). The
// reader maps the file read-only when the platform allows (mmap_unix),
// falling back to a plain read elsewhere: either way Data aliases one
// flat buffer, and programs decoded from it must be dropped before
// Close unmaps it — the same lifetime rule as irbin's zero-copy decode.
package corpus

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/ir"
	"repro/internal/irbin"
)

// Magic opens every corpus file.
const Magic = "LSCO"

// Version is the current file-format version.
const Version = 1

// headerSize is the fixed portion before the meta string.
const headerSize = 32

// indexEntrySize is one (offset, length) pair in the trailing index.
const indexEntrySize = 16

// Writer streams programs into a corpus file. Not concurrency-safe.
type Writer struct {
	f     *os.File
	off   uint64 // current write offset
	index []byte // accumulated (offset, length) entries
	count uint64
	err   error
}

// Create opens path for writing and stamps the header and meta string.
// meta is free text recorded verbatim (generator settings, seeds); keep
// it short — it is read eagerly by every Open.
func Create(path, meta string) (*Writer, error) {
	if len(meta) > 1<<20 {
		return nil, fmt.Errorf("corpus: meta string too large (%d bytes)", len(meta))
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f}
	// Header with count/indexOff zero; Close patches the real values.
	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(meta)))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.WriteString(meta); err != nil {
		f.Close()
		return nil, err
	}
	w.off = uint64(headerSize + len(meta))
	return w, nil
}

// AddFrame appends one pre-encoded irbin frame.
func (w *Writer) AddFrame(frame []byte) error {
	if w.err != nil {
		return w.err
	}
	if _, err := irbin.FrameSize(frame); err != nil {
		w.err = fmt.Errorf("corpus: refusing to add bad frame: %w", err)
		return w.err
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = err
		return err
	}
	var ent [indexEntrySize]byte
	binary.LittleEndian.PutUint64(ent[0:], w.off)
	binary.LittleEndian.PutUint64(ent[8:], uint64(len(frame)))
	w.index = append(w.index, ent[:]...)
	w.off += uint64(len(frame))
	w.count++
	return nil
}

// Add encodes prog and appends it, reusing buf (returned grown) so a
// generation loop encodes without per-program allocation.
func (w *Writer) Add(prog *ir.Program, buf []byte) ([]byte, error) {
	buf = irbin.AppendProgram(buf[:0], prog)
	return buf, w.AddFrame(buf)
}

// Count reports the programs added so far.
func (w *Writer) Count() int { return int(w.count) }

// Close writes the index, patches the header, and closes the file. The
// file is not a valid corpus until Close returns nil.
func (w *Writer) Close() error {
	if w.err != nil {
		w.f.Close()
		return w.err
	}
	indexOff := w.off
	if _, err := w.f.Write(w.index); err != nil {
		w.f.Close()
		return err
	}
	var patch [24]byte
	binary.LittleEndian.PutUint64(patch[0:], w.count)
	binary.LittleEndian.PutUint64(patch[8:], indexOff)
	if _, err := w.f.WriteAt(patch[:16], 8); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader is a random-access view of a corpus file. The underlying
// buffer is mmap'd where supported, so Frame/Decode results alias the
// mapping and must not be used after Close. Safe for concurrent reads;
// give each goroutine its own decode arena.
type Reader struct {
	data    []byte
	meta    string
	index   []byte // raw index entries, aliasing data
	count   int
	unmap   func() error
	dataOff int // first byte past header+meta: earliest legal frame offset
}

// Open maps path and validates header and index. Every index entry is
// bounds-checked here, so Frame never needs to re-validate offsets.
func Open(path string) (*Reader, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	r, err := newReader(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	r.unmap = unmap
	return r, nil
}

// newReader validates an in-memory corpus image. Split from Open for
// corruption tests, which corrupt byte slices rather than files.
func newReader(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("corpus: file too small (%d bytes)", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("corpus: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("corpus: unsupported version %d (have %d)", v, Version)
	}
	count := binary.LittleEndian.Uint64(data[8:])
	indexOff := binary.LittleEndian.Uint64(data[16:])
	metaLen := binary.LittleEndian.Uint32(data[24:])
	dataOff := uint64(headerSize) + uint64(metaLen)
	if dataOff > uint64(len(data)) {
		return nil, fmt.Errorf("corpus: meta length %d overruns file", metaLen)
	}
	need := count * indexEntrySize
	if count > uint64(len(data))/indexEntrySize { // overflow-safe
		return nil, fmt.Errorf("corpus: count %d impossible for %d-byte file", count, len(data))
	}
	if indexOff < dataOff || indexOff+need > uint64(len(data)) {
		return nil, fmt.Errorf("corpus: index [%d,+%d) outside file of %d bytes", indexOff, need, len(data))
	}
	if indexOff+need != uint64(len(data)) {
		return nil, fmt.Errorf("corpus: %d trailing bytes after index", uint64(len(data))-(indexOff+need))
	}
	r := &Reader{
		data:    data,
		meta:    string(data[headerSize:dataOff]),
		index:   data[indexOff : indexOff+need],
		count:   int(count),
		dataOff: int(dataOff),
	}
	for i := 0; i < r.count; i++ {
		off, n := r.entry(i)
		if off < uint64(r.dataOff) || n > indexOff || off > indexOff-n {
			return nil, fmt.Errorf("corpus: program %d at [%d,+%d) outside data region [%d,%d)", i, off, n, r.dataOff, indexOff)
		}
	}
	return r, nil
}

func (r *Reader) entry(i int) (off, n uint64) {
	e := r.index[i*indexEntrySize:]
	return binary.LittleEndian.Uint64(e), binary.LittleEndian.Uint64(e[8:])
}

// Count reports the number of programs.
func (r *Reader) Count() int { return r.count }

// Meta returns the writer's free-text description.
func (r *Reader) Meta() string { return r.meta }

// Size reports the total file size in bytes.
func (r *Reader) Size() int { return len(r.data) }

// Frame returns program i's raw frame, aliasing the mapping.
func (r *Reader) Frame(i int) []byte {
	off, n := r.entry(i)
	return r.data[off : off+n : off+n]
}

// Decode decodes program i into arena. The program aliases both arena
// and mapping: it dies at the arena's next Decode or the reader's
// Close, whichever comes first.
func (r *Reader) Decode(i int, arena *irbin.Arena) (*ir.Program, error) {
	prog, _, err := arena.Decode(r.Frame(i))
	if err != nil {
		return nil, fmt.Errorf("corpus: program %d: %w", i, err)
	}
	return prog, nil
}

// Close releases the mapping. All frames and decoded programs obtained
// from this reader are invalid afterwards.
func (r *Reader) Close() error {
	r.data, r.index = nil, nil
	if r.unmap != nil {
		u := r.unmap
		r.unmap = nil
		return u()
	}
	return nil
}
