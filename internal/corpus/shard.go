package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/irbin"
)

// Shard sets scale the corpus container past one file: a set is
// base.0000.lsco … base.NNNN.lsco, each member an ordinary corpus file
// holding a contiguous slice of the global program index space (its
// meta string records `shard=i/n range=[lo,hi)`). OpenSet maps every
// member and presents them as one logical reader, so the ladder and
// pipeline address programs by global index without caring where shard
// boundaries fall. Shards also give the writer and verifier their
// parallelism unit: members are generated and verified concurrently.

// ShardPath names shard i of the set rooted at path: the ".lsco"
// extension (or any extension) is peeled off and a zero-padded member
// number inserted — "corpus.lsco" → "corpus.0007.lsco".
func ShardPath(path string, i int) string {
	ext := filepath.Ext(path)
	base := strings.TrimSuffix(path, ext)
	if ext == "" {
		ext = ".lsco"
	}
	return fmt.Sprintf("%s.%04d%s", base, i, ext)
}

// SetPaths expands arg into the ordered member list of a corpus set:
//
//   - a glob pattern (anything with *, ?, or [) matches directly;
//   - an existing file is a set of one;
//   - otherwise arg is treated as a set base name and expanded to
//     base.NNNN.lsco members.
//
// The result is sorted, which for zero-padded shard names is shard
// order.
func SetPaths(arg string) ([]string, error) {
	if strings.ContainsAny(arg, "*?[") {
		paths, err := filepath.Glob(arg)
		if err != nil {
			return nil, fmt.Errorf("corpus: bad pattern %q: %w", arg, err)
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("corpus: pattern %q matches nothing", arg)
		}
		sort.Strings(paths)
		return paths, nil
	}
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		return []string{arg}, nil
	}
	ext := filepath.Ext(arg)
	base := strings.TrimSuffix(arg, ext)
	if ext == "" {
		ext = ".lsco"
	}
	paths, err := filepath.Glob(fmt.Sprintf("%s.[0-9][0-9][0-9][0-9]%s", base, ext))
	if err == nil && len(paths) > 0 {
		sort.Strings(paths)
		return paths, nil
	}
	return nil, fmt.Errorf("corpus: %s: no such file or shard set", arg)
}

// Set is a read-only view over the members of a shard set, presenting
// them as one logical corpus: global program index i lives in the shard
// whose cumulative count range contains i. Each member keeps its own
// mmap; the lifetime rules of Reader apply to the whole set (frames and
// decoded programs die at Close). Safe for concurrent reads with
// per-goroutine arenas, like Reader.
type Set struct {
	readers []*Reader
	paths   []string
	cum     []int // cum[i] = programs in readers[0..i]
	size    int64
}

// OpenSet opens the corpus set named by arg (a file, a set base name,
// or a glob — see SetPaths) and validates that declared shard sets are
// complete: members generated with Shards > 1 carry `shard=i/n` stamps,
// and a set missing a member or mixing two generations refuses to open
// rather than silently serving a corpus with a hole.
func OpenSet(arg string) (*Set, error) {
	paths, err := SetPaths(arg)
	if err != nil {
		return nil, err
	}
	return OpenSetFiles(paths)
}

// OpenSetFiles opens an explicit member list as one logical corpus.
func OpenSetFiles(paths []string) (*Set, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: empty shard set")
	}
	s := &Set{paths: paths}
	for _, p := range paths {
		r, err := Open(p)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("corpus: shard %s: %w", p, err)
		}
		s.readers = append(s.readers, r)
		s.size += int64(r.Size())
		total := r.Count()
		if len(s.cum) > 0 {
			total += s.cum[len(s.cum)-1]
		}
		s.cum = append(s.cum, total)
	}
	if err := s.checkComplete(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// checkComplete validates shard=i/n meta stamps: every declared member
// of one generation must be present exactly once, in order.
func (s *Set) checkComplete() error {
	declared := -1 // n from the first stamped member; -1 until seen
	seen := map[int]string{}
	for i, r := range s.readers {
		idx, n, ok := shardStamp(r.Meta())
		if !ok {
			if declared >= 0 {
				return fmt.Errorf("corpus: %s has no shard stamp but %s declares a %d-shard set", s.paths[i], s.paths[0], declared)
			}
			continue
		}
		if declared < 0 {
			declared = n
		} else if n != declared {
			return fmt.Errorf("corpus: %s declares %d shards, %s declares %d — mixed sets", s.paths[i], n, s.paths[0], declared)
		}
		if prev, dup := seen[idx]; dup {
			return fmt.Errorf("corpus: shard %d appears twice (%s, %s)", idx, prev, s.paths[i])
		}
		seen[idx] = s.paths[i]
	}
	if declared < 0 {
		return nil // unstamped members: a hand-assembled set, trust the caller
	}
	if len(seen) != len(s.readers) {
		return fmt.Errorf("corpus: set mixes stamped and unstamped members")
	}
	for i := 0; i < declared; i++ {
		if _, ok := seen[i]; !ok {
			return fmt.Errorf("corpus: missing shard %d of %d (have %d members)", i, declared, len(s.readers))
		}
	}
	if len(seen) > declared {
		return fmt.Errorf("corpus: %d members for a declared %d-shard set", len(seen), declared)
	}
	return nil
}

// shardStamp parses a `shard=i/n` token out of a meta string.
func shardStamp(meta string) (idx, n int, ok bool) {
	for _, f := range strings.Fields(meta) {
		v, found := strings.CutPrefix(f, "shard=")
		if !found {
			continue
		}
		is, ns, found := strings.Cut(v, "/")
		if !found {
			return 0, 0, false
		}
		i, err1 := strconv.Atoi(is)
		nn, err2 := strconv.Atoi(ns)
		if err1 != nil || err2 != nil || i < 0 || nn <= 0 || i >= nn {
			return 0, 0, false
		}
		return i, nn, true
	}
	return 0, 0, false
}

// Count reports the total programs across all members.
func (s *Set) Count() int {
	if len(s.cum) == 0 {
		return 0
	}
	return s.cum[len(s.cum)-1]
}

// Shards reports the member count.
func (s *Set) Shards() int { return len(s.readers) }

// Shard returns member i's reader (for shard-parallel sweeps).
func (s *Set) Shard(i int) *Reader { return s.readers[i] }

// Path returns member i's file path.
func (s *Set) Path(i int) string { return s.paths[i] }

// Size reports the summed member file sizes in bytes.
func (s *Set) Size() int64 { return s.size }

// Meta returns the first member's meta string (all members of one
// generation share the generator settings; the shard stamp differs).
func (s *Set) Meta() string {
	if len(s.readers) == 0 {
		return ""
	}
	return s.readers[0].Meta()
}

// locate maps a global program index to (member, local index).
func (s *Set) locate(i int) (int, int) {
	m := sort.SearchInts(s.cum, i+1)
	lo := 0
	if m > 0 {
		lo = s.cum[m-1]
	}
	return m, i - lo
}

// Frame returns global program i's raw frame, aliasing that member's
// mapping.
func (s *Set) Frame(i int) []byte {
	m, local := s.locate(i)
	return s.readers[m].Frame(local)
}

// Decode decodes global program i into arena (same lifetime rules as
// Reader.Decode).
func (s *Set) Decode(i int, arena *irbin.Arena) (*ir.Program, error) {
	m, local := s.locate(i)
	return s.readers[m].Decode(local, arena)
}

// Close unmaps every member. Usable mid-open (Close on a partially
// opened set closes what was opened).
func (s *Set) Close() error {
	var first error
	for _, r := range s.readers {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.readers = nil
	return first
}
