package corpus

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/irbin"
)

// FuzzCorpusImage hammers the reader's validation path with arbitrary
// corpus images: whatever the bytes, newReader either rejects them or
// yields a reader whose every frame decodes without panicking. Seeded
// with a valid image plus the corruption table's interesting shapes —
// including a corrupt shard header, the seed the shard-set open path
// (OpenSet → Open → newReader) must keep refusing.
func FuzzCorpusImage(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.lsco")
	if err := Generate(path, GenOptions{Count: 6, Seed: 42, Shards: 2}); err != nil {
		f.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		img, err := os.ReadFile(ShardPath(path, s))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
		// Corrupt shard header: magic smashed, version smashed, and the
		// count field inflated — the header corruptions a torn shard
		// write or a bad disk most plausibly produces.
		bad := bytes.Clone(img)
		bad[0] = 'X'
		f.Add(bad)
		bad = bytes.Clone(img)
		bad[4] = 0xff
		f.Add(bad)
		bad = bytes.Clone(img)
		bad[8], bad[9] = 0xff, 0xff
		f.Add(bad)
		f.Add(img[:16])
		f.Add(img[:len(img)-5])
	}
	f.Fuzz(func(t *testing.T, img []byte) {
		r, err := newReader(img)
		if err != nil {
			return
		}
		arena := irbin.NewArena()
		for i := 0; i < r.Count(); i++ {
			// Errors are fine; panics are the bug.
			_, _ = r.Decode(i, arena)
		}
	})
}
