package corpus

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/irbin"
)

// writeTestSet generates an n-program, shards-member set and returns
// its base path.
func writeTestSet(t *testing.T, n, shards int) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), "set.lsco")
	if err := Generate(base, GenOptions{Count: n, Seed: 100, Workers: 2, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestShardPath(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"corpus.lsco", "corpus.0000.lsco"},
		{"dir/x.lsco", "dir/x.0000.lsco"},
		{"bare", "bare.0000.lsco"},
	} {
		if got := ShardPath(tc.in, 0); got != tc.want {
			t.Errorf("ShardPath(%q, 0) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if got := ShardPath("corpus.lsco", 12); got != "corpus.0012.lsco" {
		t.Errorf("ShardPath index padding: got %q", got)
	}
}

// TestShardSetMatchesSingleFile is the core sharding invariant: the
// set's logical content — global index order, per-program bytes — is
// identical to the unsharded corpus of the same options.
func TestShardSetMatchesSingleFile(t *testing.T) {
	const n = 50
	single := writeTestCorpus(t, n) // Seed 100, same options as writeTestSet
	base := writeTestSet(t, n, 4)

	r, err := Open(single)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	set, err := OpenSet(base)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	if set.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", set.Shards())
	}
	if set.Count() != r.Count() {
		t.Fatalf("set Count = %d, single-file Count = %d", set.Count(), r.Count())
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(set.Frame(i), r.Frame(i)) {
			t.Fatalf("program %d differs between set and single file", i)
		}
	}
	// Decode through the set too: global index must land in the right
	// shard-local frame.
	arena := irbin.NewArena()
	for _, i := range []int{49, 0, 25, 13, 37} {
		if _, err := set.Decode(i, arena); err != nil {
			t.Fatalf("set decode %d: %v", i, err)
		}
	}
	if !strings.Contains(set.Meta(), "shard=0/4") {
		t.Fatalf("set meta lost the shard stamp: %q", set.Meta())
	}
}

func TestShardGenerateDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.lsco"), filepath.Join(dir, "b.lsco")
	if err := Generate(a, GenOptions{Count: 40, Seed: 7, Workers: 1, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if err := Generate(b, GenOptions{Count: 40, Seed: 7, Workers: 4, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		da, _ := os.ReadFile(ShardPath(a, s))
		db, _ := os.ReadFile(ShardPath(b, s))
		if !bytes.Equal(da, db) {
			t.Fatalf("shard %d differs across worker counts", s)
		}
	}
}

func TestOpenSetMissingShard(t *testing.T) {
	base := writeTestSet(t, 40, 4)
	if err := os.Remove(ShardPath(base, 2)); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSet(base)
	if err == nil {
		t.Fatal("OpenSet accepted a set with a missing shard")
	}
	if !strings.Contains(err.Error(), "missing shard 2") {
		t.Fatalf("error does not name the hole: %v", err)
	}
}

func TestOpenSetCorruptShardHeader(t *testing.T) {
	base := writeTestSet(t, 40, 4)
	victim := ShardPath(base, 1)
	img, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	img[0] = 'X' // smash the magic
	if err := os.WriteFile(victim, img, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSet(base)
	if err == nil {
		t.Fatal("OpenSet accepted a set with a corrupt shard header")
	}
	if !strings.Contains(err.Error(), victim) {
		t.Fatalf("error does not name the corrupt shard: %v", err)
	}
}

func TestOpenSetDuplicateShard(t *testing.T) {
	base := writeTestSet(t, 40, 2)
	// A stray copy of shard 0 under a higher member number: same
	// declared set, index 0 twice.
	img, err := os.ReadFile(ShardPath(base, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ShardPath(base, 3), img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSet(base); err == nil {
		t.Fatal("OpenSet accepted a set with a duplicated shard")
	}
}

func TestOpenSetMixedGenerations(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.lsco"), filepath.Join(dir, "b.lsco")
	if err := Generate(a, GenOptions{Count: 20, Seed: 1, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if err := Generate(b, GenOptions{Count: 30, Seed: 2, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	// Hand-mix members of two different declared sets.
	_, err := OpenSetFiles([]string{ShardPath(a, 0), ShardPath(a, 1), ShardPath(b, 0)})
	if err == nil {
		t.Fatal("OpenSetFiles accepted members of two different sets")
	}
}

func TestOpenSetSingleFileAndGlob(t *testing.T) {
	path := writeTestCorpus(t, 10)
	set, err := OpenSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if set.Shards() != 1 || set.Count() != 10 {
		t.Fatalf("single-file set: shards %d count %d", set.Shards(), set.Count())
	}
	set.Close()

	base := writeTestSet(t, 20, 2)
	ext := filepath.Ext(base)
	pattern := strings.TrimSuffix(base, ext) + ".*" + ext
	set, err = OpenSet(pattern)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Shards() != 2 || set.Count() != 20 {
		t.Fatalf("glob set: shards %d count %d", set.Shards(), set.Count())
	}
}

func TestOpenSetNothingThere(t *testing.T) {
	if _, err := OpenSet(filepath.Join(t.TempDir(), "ghost.lsco")); err == nil {
		t.Fatal("OpenSet accepted a nonexistent base")
	}
	if _, err := OpenSet(filepath.Join(t.TempDir(), "g*.lsco")); err == nil {
		t.Fatal("OpenSet accepted a pattern matching nothing")
	}
}

func TestGenerateRejectsMoreShardsThanPrograms(t *testing.T) {
	base := filepath.Join(t.TempDir(), "tiny.lsco")
	if err := Generate(base, GenOptions{Count: 3, Shards: 8}); err == nil {
		t.Fatal("Generate accepted more shards than programs")
	}
}
