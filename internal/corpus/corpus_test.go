package corpus

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irbin"
	"repro/internal/progs"
	"repro/internal/target"
)

func writeTestCorpus(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.lsco")
	if err := Generate(path, GenOptions{Count: n, Seed: 100, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWriteReadRoundTrip(t *testing.T) {
	const n = 40
	path := writeTestCorpus(t, n)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != n {
		t.Fatalf("Count = %d, want %d", r.Count(), n)
	}
	if !strings.Contains(r.Meta(), "seed=100") {
		t.Fatalf("meta lost generation settings: %q", r.Meta())
	}
	// Every program must decode, validate, and match an independent
	// regeneration from the recorded seed schedule.
	profiles := progs.Profiles()
	mach := target.Alpha()
	arena := irbin.NewArena()
	pr := &ir.Printer{}
	for i := 0; i < n; i++ {
		prog, err := r.Decode(i, arena)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if err := ir.ValidateProgram(prog, nil); err != nil {
			t.Fatalf("program %d invalid: %v", i, err)
		}
		cfg, err := progs.ProfileGen(profiles[i%len(profiles)], 100+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		var got, want strings.Builder
		pr.WriteProgram(&got, prog)
		pr.WriteProgram(&want, progs.Random(mach, cfg))
		if got.String() != want.String() {
			t.Fatalf("program %d does not match its seed regeneration", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.lsco"), filepath.Join(dir, "b.lsco")
	// Different worker counts must still produce identical files: the
	// batched pipeline writes in index order regardless of parallelism.
	if err := Generate(a, GenOptions{Count: 30, Seed: 5, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Generate(b, GenOptions{Count: 30, Seed: 5, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatal("generation is not deterministic across worker counts")
	}
}

func TestFrameRandomAccess(t *testing.T) {
	path := writeTestCorpus(t, 10)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Access out of order; every frame must be self-consistent.
	for _, i := range []int{7, 0, 9, 3, 3} {
		frame := r.Frame(i)
		n, err := irbin.FrameSize(frame)
		if err != nil || n != len(frame) {
			t.Fatalf("frame %d: size %d of %d, err %v", i, n, len(frame), err)
		}
	}
}

// corrupt loads a valid corpus image, applies f, and reports whether
// reading (header + full decode sweep) fails.
func corruptFails(t *testing.T, base []byte, f func([]byte) []byte) bool {
	t.Helper()
	img := f(bytes.Clone(base))
	r, err := newReader(img)
	if err != nil {
		return true
	}
	arena := irbin.NewArena()
	for i := 0; i < r.Count(); i++ {
		if _, err := r.Decode(i, arena); err != nil {
			return true
		}
	}
	return false
}

func TestReaderRejectsCorruption(t *testing.T) {
	path := writeTestCorpus(t, 8)
	base, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		f    func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }},
		{"short header", func(b []byte) []byte { return b[:16] }},
		{"truncated index", func(b []byte) []byte { return b[:len(b)-7] }},
		{"truncated data", func(b []byte) []byte {
			// Drop a byte mid-data and pull the index back over the gap:
			// counts and offsets now disagree with the bytes.
			cut := len(b) / 2
			return append(b[:cut], b[cut+1:]...)
		}},
		{"count inflated", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<40)
			return b
		}},
		{"index offset past EOF", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], uint64(len(b))+8)
			return b
		}},
		{"index offset into header", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 0)
			binary.LittleEndian.PutUint64(b[8:], uint64(len(b))/16)
			return b
		}},
		{"meta overruns file", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:], uint32(len(b)))
			return b
		}},
		{"frame corrupted", func(b []byte) []byte {
			// Smash bytes shortly after the first frame's header so the
			// index still lines up but the frame itself is damaged.
			indexOff := binary.LittleEndian.Uint64(b[16:])
			off := binary.LittleEndian.Uint64(b[indexOff:])
			for i := off; i < off+20 && i < uint64(len(b)); i++ {
				b[i] ^= 0xa5
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !corruptFails(t, base, tc.f) {
				t.Fatal("corrupt corpus was accepted")
			}
		})
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.lsco")); err == nil {
		t.Fatal("Open accepted a missing file")
	}
}

func TestWriterRejectsBadFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.lsco")
	w, err := Create(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFrame([]byte("not a frame")); err == nil {
		t.Fatal("AddFrame accepted garbage")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close succeeded after a failed AddFrame")
	}
}

func BenchmarkCorpusDecode(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.lsco")
	if err := Generate(path, GenOptions{Count: 64, Seed: 9}); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	arena := irbin.NewArena()
	if _, err := r.Decode(0, arena); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(r.Size() / r.Count()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Decode(i%r.Count(), arena); err != nil {
			b.Fatal(err)
		}
	}
}
