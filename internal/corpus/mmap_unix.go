//go:build unix

package corpus

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. An empty file maps to a nil slice (mmap
// of length 0 is an error on Linux) and a nil unmap. Falls back to a
// plain read if the filesystem refuses mmap.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return data, nil, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
