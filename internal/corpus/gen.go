package corpus

import (
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/irbin"
	"repro/internal/progs"
	"repro/internal/target"
)

// GenOptions parameterizes Generate.
type GenOptions struct {
	Count    int      // programs to write
	Seed     int64    // base seed; program i uses Seed+i
	Profiles []string // generator profiles, cycled; nil = all profiles
	Machine  *target.Machine
	Workers  int // parallel generator goroutines; 0 = GOMAXPROCS
	// Shards, when > 1, writes a shard set instead of one file: path
	// becomes the set's base name and the programs land in
	// base.0000.lsco … base.NNNN.lsco (see ShardPath), each shard
	// holding a contiguous slice of the global index space. The set's
	// logical content — program i generated from Seed+i with profiles
	// cycled by global index — is byte-identical to the single-file
	// corpus of the same options, so sharding is purely a storage and
	// parallelism decision. Shards are generated concurrently, bounded
	// by Workers.
	Shards int
}

// Generate writes a corpus of Count random programs to path, cycling
// the given generator profiles with seeds Seed+i so any slice of the
// corpus is reproducible from the meta string alone. Generation and
// encoding run on Workers goroutines in batches; writing stays ordered,
// so the same options always produce the identical file (and, with
// Shards > 1, the identical shard files regardless of Workers).
func Generate(path string, opt GenOptions) error {
	if opt.Count <= 0 {
		return fmt.Errorf("corpus: non-positive program count %d", opt.Count)
	}
	profiles := opt.Profiles
	if len(profiles) == 0 {
		profiles = progs.Profiles()
	}
	for _, p := range profiles {
		if _, err := progs.ProfileGen(p, 0); err != nil {
			return err
		}
	}
	mach := opt.Machine
	if mach == nil {
		mach = target.Alpha()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Shards <= 1 {
		meta := genMeta(opt.Count, opt.Seed, profiles, mach, -1, 0, 0, 0)
		return generateRange(path, meta, 0, opt.Count, opt.Seed, profiles, mach, workers)
	}
	if opt.Shards > opt.Count {
		return fmt.Errorf("corpus: %d shards for %d programs", opt.Shards, opt.Count)
	}

	// Shard s holds the contiguous global range [s·C/S, (s+1)·C/S); the
	// shard files are generated concurrently, each with enough inner
	// workers to use the whole budget when shards are few.
	inner := max(1, workers/opt.Shards)
	sem := make(chan struct{}, max(1, workers))
	errs := make([]error, opt.Shards)
	var wg sync.WaitGroup
	for s := 0; s < opt.Shards; s++ {
		lo := s * opt.Count / opt.Shards
		hi := (s + 1) * opt.Count / opt.Shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			meta := genMeta(opt.Count, opt.Seed, profiles, mach, s, opt.Shards, lo, hi)
			errs[s] = generateRange(ShardPath(path, s), meta, lo, hi, opt.Seed, profiles, mach, inner)
		}(s, lo, hi)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			// Leave no partial set behind: a set with a hole would open as
			// missing-shard forever.
			for i := 0; i < opt.Shards; i++ {
				os.Remove(ShardPath(path, i))
			}
			return fmt.Errorf("corpus: shard %d: %w", s, err)
		}
	}
	return nil
}

// genMeta renders the reproducibility stamp. shard < 0 means a
// single-file corpus; otherwise the shard's membership and global range
// are recorded, which is what OpenSet validates set completeness from.
func genMeta(count int, seed int64, profiles []string, mach *target.Machine, shard, shards, lo, hi int) string {
	meta := fmt.Sprintf("generator=progs.Random count=%d seed=%d profiles=%v machine=%s",
		count, seed, profiles, mach.Name)
	if shard >= 0 {
		meta += fmt.Sprintf(" shard=%d/%d range=[%d,%d)", shard, shards, lo, hi)
	}
	return meta
}

// generateRange writes global programs [lo, hi) to path. Seeds and
// profiles are indexed by global position, so concatenating the ranges
// of a shard set reproduces the unsharded corpus program for program.
func generateRange(path, meta string, lo, hi int, seed int64, profiles []string, mach *target.Machine, workers int) error {
	w, err := Create(path, meta)
	if err != nil {
		return err
	}

	// Batched ordered pipeline: workers fill one batch of frames in
	// parallel, then the batch is written in index order. Memory stays
	// bounded by the batch, and the output is deterministic.
	const batch = 256
	frames := make([][]byte, batch)
	for base := lo; base < hi; base += batch {
		n := min(batch, hi-base)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := wk; i < n; i += workers {
					idx := base + i
					cfg, _ := progs.ProfileGen(profiles[idx%len(profiles)], seed+int64(idx))
					frames[i] = irbin.AppendProgram(frames[i][:0], progs.Random(mach, cfg))
				}
			}(wk)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if err := w.AddFrame(frames[i]); err != nil {
				w.Close()
				return err
			}
		}
	}
	return w.Close()
}
