package corpus

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/irbin"
	"repro/internal/progs"
	"repro/internal/target"
)

// GenOptions parameterizes Generate.
type GenOptions struct {
	Count    int      // programs to write
	Seed     int64    // base seed; program i uses Seed+i
	Profiles []string // generator profiles, cycled; nil = all profiles
	Machine  *target.Machine
	Workers  int // parallel generator goroutines; 0 = GOMAXPROCS
}

// Generate writes a corpus of Count random programs to path, cycling
// the given generator profiles with seeds Seed+i so any slice of the
// corpus is reproducible from the meta string alone. Generation and
// encoding run on Workers goroutines in batches; writing stays ordered,
// so the same options always produce the identical file.
func Generate(path string, opt GenOptions) error {
	if opt.Count <= 0 {
		return fmt.Errorf("corpus: non-positive program count %d", opt.Count)
	}
	profiles := opt.Profiles
	if len(profiles) == 0 {
		profiles = progs.Profiles()
	}
	for _, p := range profiles {
		if _, err := progs.ProfileGen(p, 0); err != nil {
			return err
		}
	}
	mach := opt.Machine
	if mach == nil {
		mach = target.Alpha()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	meta := fmt.Sprintf("generator=progs.Random count=%d seed=%d profiles=%v machine=%s",
		opt.Count, opt.Seed, profiles, mach.Name)
	w, err := Create(path, meta)
	if err != nil {
		return err
	}

	// Batched ordered pipeline: workers fill one batch of frames in
	// parallel, then the batch is written in index order. Memory stays
	// bounded by the batch, and the output is deterministic.
	const batch = 256
	frames := make([][]byte, batch)
	for base := 0; base < opt.Count; base += batch {
		n := min(batch, opt.Count-base)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := wk; i < n; i += workers {
					idx := base + i
					cfg, _ := progs.ProfileGen(profiles[idx%len(profiles)], opt.Seed+int64(idx))
					frames[i] = irbin.AppendProgram(frames[i][:0], progs.Random(mach, cfg))
				}
			}(wk)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if err := w.AddFrame(frames[i]); err != nil {
				w.Close()
				return err
			}
		}
	}
	return w.Close()
}
