//go:build !unix

package corpus

import "os"

// mapFile reads path wholesale where mmap is unavailable. The Reader
// contract (buffer dies at Close) is unchanged, just without the page
// cache sharing.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
