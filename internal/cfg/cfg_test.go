package cfg

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
)

// buildNestedLoops constructs:
//
//	entry → outerHead → outerBody → innerHead → innerBody → innerHead
//	                 ↘ exit         innerHead → outerLatch → outerHead
func buildNestedLoops(t *testing.T) (*ir.Proc, map[string]*ir.Block) {
	t.Helper()
	mach := target.Tiny(6, 3)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	i := pb.IntTemp("i")
	j := pb.IntTemp("j")
	pb.Ldi(i, 0)

	outerHead := pb.Block("outerHead")
	outerBody := pb.Block("outerBody")
	innerHead := pb.Block("innerHead")
	innerBody := pb.Block("innerBody")
	outerLatch := pb.Block("outerLatch")
	exit := pb.Block("exit")

	pb.Jmp(outerHead)
	pb.StartBlock(outerHead)
	c := pb.IntTemp("c")
	pb.Op2(ir.CmpLT, c, ir.TempOp(i), ir.ImmOp(3))
	pb.Br(ir.TempOp(c), outerBody, exit)

	pb.StartBlock(outerBody)
	pb.Ldi(j, 0)
	pb.Jmp(innerHead)

	pb.StartBlock(innerHead)
	c2 := pb.IntTemp("c2")
	pb.Op2(ir.CmpLT, c2, ir.TempOp(j), ir.ImmOp(2))
	pb.Br(ir.TempOp(c2), innerBody, outerLatch)

	pb.StartBlock(innerBody)
	pb.Op2(ir.Add, j, ir.TempOp(j), ir.ImmOp(1))
	pb.Jmp(innerHead)

	pb.StartBlock(outerLatch)
	pb.Op2(ir.Add, i, ir.TempOp(i), ir.ImmOp(1))
	pb.Jmp(outerHead)

	pb.StartBlock(exit)
	pb.Ret(i)

	blocks := map[string]*ir.Block{}
	for _, blk := range pb.P.Blocks {
		blocks[blk.Name] = blk
	}
	return pb.P, blocks
}

func TestReversePostorder(t *testing.T) {
	p, blocks := buildNestedLoops(t)
	rpo := ReversePostorder(p)
	if len(rpo) != len(p.Blocks) {
		t.Fatalf("rpo covers %d of %d blocks", len(rpo), len(p.Blocks))
	}
	if rpo[0] != p.Entry() {
		t.Fatal("rpo must start at entry")
	}
	index := map[*ir.Block]int{}
	for i, b := range rpo {
		index[b] = i
	}
	// A block must appear before any successor it dominates-forward into
	// (loop back edges excepted). Spot checks:
	if index[blocks["outerHead"]] > index[blocks["outerBody"]] {
		t.Fatal("outerHead after outerBody in RPO")
	}
	if index[blocks["innerHead"]] > index[blocks["innerBody"]] {
		t.Fatal("innerHead after innerBody in RPO")
	}
}

func TestDominators(t *testing.T) {
	p, blocks := buildNestedLoops(t)
	idom := Dominators(p)
	entry := p.Entry()
	if idom[entry] != entry {
		t.Fatal("entry must dominate itself")
	}
	wants := map[string]string{
		"outerHead":  "entry",
		"outerBody":  "outerHead",
		"innerHead":  "outerBody",
		"innerBody":  "innerHead",
		"outerLatch": "innerHead",
		"exit":       "outerHead",
	}
	for blk, dom := range wants {
		if got := idom[blocks[blk]]; got == nil || got.Name != dom {
			t.Fatalf("idom(%s) = %v, want %s", blk, got, dom)
		}
	}
	if !Dominates(idom, entry, blocks["innerBody"]) {
		t.Fatal("entry must dominate innerBody")
	}
	if Dominates(idom, blocks["innerBody"], blocks["exit"]) {
		t.Fatal("innerBody must not dominate exit")
	}
}

func TestLoopDepths(t *testing.T) {
	p, blocks := buildNestedLoops(t)
	loops := ComputeLoopDepths(p)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	wants := map[string]int{
		"entry": 0, "outerHead": 1, "outerBody": 1,
		"innerHead": 2, "innerBody": 2, "outerLatch": 1, "exit": 0,
	}
	for name, depth := range wants {
		if blocks[name].Depth != depth {
			t.Fatalf("depth(%s) = %d, want %d", name, blocks[name].Depth, depth)
		}
	}
}

func TestIsCriticalEdge(t *testing.T) {
	p, blocks := buildNestedLoops(t)
	_ = p
	// outerHead→outerBody: outerHead has 2 succs, outerBody has 1 pred:
	// not critical. outerHead→exit: exit has 1 pred: not critical.
	if IsCriticalEdge(blocks["outerHead"], blocks["outerBody"]) {
		t.Fatal("outerHead->outerBody wrongly critical")
	}
	// innerHead→outerLatch: innerHead 2 succs, outerLatch 1 pred: no.
	if IsCriticalEdge(blocks["innerHead"], blocks["outerLatch"]) {
		t.Fatal("innerHead->outerLatch wrongly critical")
	}
	// Make a genuinely critical edge: innerHead (2 succs) → innerBody
	// after giving innerBody a second predecessor.
	ir.AddEdge(blocks["outerLatch"], blocks["innerBody"])
	if !IsCriticalEdge(blocks["innerHead"], blocks["innerBody"]) {
		t.Fatal("critical edge not detected")
	}
}

func TestUnreachableBlocksHandled(t *testing.T) {
	p, _ := buildNestedLoops(t)
	dead := p.NewBlock("dead")
	dead.Instrs = []ir.Instr{{Op: ir.Ret}}
	rpo := ReversePostorder(p)
	for _, b := range rpo {
		if b == dead {
			t.Fatal("unreachable block in RPO")
		}
	}
	idom := Dominators(p)
	if idom[dead] != nil {
		t.Fatal("unreachable block has an idom")
	}
	ComputeLoopDepths(p) // must not panic
}
