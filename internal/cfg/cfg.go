// Package cfg provides control-flow-graph analyses over ir.Proc: reverse
// postorder, dominators, natural loops, and loop nesting depth.
//
// Loop depth is shared infrastructure in the paper's experimental setup:
// "Loop depth is used in the same way to weight occurrence counts in both
// allocators" (§3). Both the binpacking eviction heuristic and the
// coloring spill metric consume Block.Depth computed here.
package cfg

import (
	"repro/internal/ir"
)

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder.
func ReversePostorder(p *ir.Proc) []*ir.Block {
	seen := make(map[*ir.Block]bool, len(p.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if p.Entry() != nil {
		dfs(p.Entry())
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate dominator of every reachable block
// using the Cooper–Harvey–Kennedy iterative algorithm. The entry block's
// immediate dominator is itself. Unreachable blocks map to nil.
func Dominators(p *ir.Proc) map[*ir.Block]*ir.Block {
	rpo := ReversePostorder(p)
	index := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*ir.Block]*ir.Block, len(rpo))
	entry := p.Entry()
	idom[entry] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, pred := range b.Preds {
				if idom[pred] == nil {
					continue // pred not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = pred
				} else {
					newIdom = intersect(pred, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom map (reflexive).
func Dominates(idom map[*ir.Block]*ir.Block, a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return a == b
		}
		b = next
	}
}

// Loop describes one natural loop.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
}

// NaturalLoops finds the natural loop of every back edge (an edge t→h
// where h dominates t). Loops sharing a header are merged.
func NaturalLoops(p *ir.Proc) []*Loop {
	idom := Dominators(p)
	loops := make(map[*ir.Block]*Loop)
	var order []*ir.Block
	for _, b := range p.Blocks {
		if idom[b] == nil && b != p.Entry() {
			continue // unreachable
		}
		for _, h := range b.Succs {
			if !Dominates(idom, h, b) {
				continue
			}
			// b→h is a back edge; collect the natural loop body.
			l := loops[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[*ir.Block]bool{h: true}}
				loops[h] = l
				order = append(order, h)
			}
			var stack []*ir.Block
			if !l.Blocks[b] {
				l.Blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, q := range x.Preds {
					if !l.Blocks[q] {
						l.Blocks[q] = true
						stack = append(stack, q)
					}
				}
			}
		}
	}
	out := make([]*Loop, 0, len(order))
	for _, h := range order {
		out = append(out, loops[h])
	}
	return out
}

// ComputeLoopDepths sets Block.Depth for every block to the number of
// natural loops containing it, and returns the loops.
func ComputeLoopDepths(p *ir.Proc) []*Loop {
	for _, b := range p.Blocks {
		b.Depth = 0
	}
	loops := NaturalLoops(p)
	for _, l := range loops {
		for b := range l.Blocks {
			b.Depth++
		}
	}
	return loops
}

// IsCriticalEdge reports whether the edge pred→succ is critical: pred has
// several successors and succ several predecessors. The resolution phase
// must split such edges to place repair code (§2.4, footnote 1).
func IsCriticalEdge(pred, succ *ir.Block) bool {
	return len(pred.Succs) > 1 && len(succ.Preds) > 1
}
