package vm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
)

func run(t *testing.T, build func(b *ir.Builder, pb *ir.ProcBuilder), input []byte) *Result {
	t.Helper()
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 32)
	pb := b.NewProc("main")
	build(b, pb)
	if err := ir.ValidateProgram(b.Prog, mach); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	res, err := Run(b.Prog, Config{Mach: mach, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIntArithmetic(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		y := pb.IntTemp("y")
		pb.Ldi(x, 7)
		pb.Op2(ir.Mul, y, ir.TempOp(x), ir.ImmOp(6))    // 42
		pb.Op2(ir.Sub, y, ir.TempOp(y), ir.ImmOp(2))    // 40
		pb.Op2(ir.Div, y, ir.TempOp(y), ir.ImmOp(3))    // 13
		pb.Op2(ir.Rem, y, ir.TempOp(y), ir.ImmOp(5))    // 3
		pb.Op2(ir.Shl, y, ir.TempOp(y), ir.ImmOp(4))    // 48
		pb.Op2(ir.Xor, y, ir.TempOp(y), ir.ImmOp(0xff)) // 207
		pb.Ret(y)
	}, nil)
	if res.RetValue != 207 {
		t.Fatalf("ret = %d, want 207", res.RetValue)
	}
}

func TestDivRemByZeroDefined(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		z := pb.IntTemp("z")
		q := pb.IntTemp("q")
		r := pb.IntTemp("r")
		pb.Ldi(x, 99)
		pb.Ldi(z, 0)
		pb.Op2(ir.Div, q, ir.TempOp(x), ir.TempOp(z))
		pb.Op2(ir.Rem, r, ir.TempOp(x), ir.TempOp(z))
		pb.Op2(ir.Add, q, ir.TempOp(q), ir.TempOp(r))
		pb.Ret(q)
	}, nil)
	if res.RetValue != 0 {
		t.Fatalf("div/rem by zero = %d, want 0", res.RetValue)
	}
}

func TestMinInt64Division(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		m := pb.IntTemp("m")
		pb.Ldi(x, math.MinInt64)
		pb.Ldi(m, -1)
		pb.Op2(ir.Div, x, ir.TempOp(x), ir.TempOp(m))
		pb.Ret(x)
	}, nil)
	if res.RetValue != math.MinInt64 {
		t.Fatalf("MinInt64/-1 = %d", res.RetValue)
	}
}

func TestFloatOpsAndConversion(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		f := pb.FloatTemp("f")
		g := pb.FloatTemp("g")
		r := pb.IntTemp("r")
		pb.FLdi(f, 2.5)
		pb.FLdi(g, 4.0)
		pb.Op2(ir.FMul, f, ir.TempOp(f), ir.TempOp(g)) // 10
		pb.Op2(ir.FAdd, f, ir.TempOp(f), ir.FImmOp(0.75))
		pb.Op1(ir.CvtFI, r, ir.TempOp(f)) // 10
		pb.Ret(r)
	}, nil)
	if res.RetValue != 10 {
		t.Fatalf("float chain = %d, want 10", res.RetValue)
	}
}

func TestMemoryAndBounds(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		y := pb.IntTemp("y")
		pb.Ldi(x, 123)
		pb.St(ir.TempOp(x), ir.ImmOp(5), 2) // mem[7] = 123
		pb.Ld(y, ir.ImmOp(3), 4)            // y = mem[7]
		pb.Ret(y)
	}, nil)
	if res.RetValue != 123 {
		t.Fatalf("mem roundtrip = %d", res.RetValue)
	}

	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 4)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ld(x, ir.ImmOp(100), 0)
	pb.Ret(x)
	if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
		t.Fatal("out-of-bounds load not rejected")
	}
}

func TestIntrinsicsIO(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		c1 := pb.IntTemp("c1")
		c2 := pb.IntTemp("c2")
		c3 := pb.IntTemp("c3")
		pb.Call("getc", c1)
		pb.Call("getc", c2)
		pb.Call("getc", c3) // EOF: -1
		pb.Call("putc", ir.NoTemp, ir.TempOp(c1))
		pb.Call("puti", ir.NoTemp, ir.TempOp(c3))
		sum := pb.IntTemp("sum")
		pb.Op2(ir.Add, sum, ir.TempOp(c1), ir.TempOp(c2))
		pb.Ret(sum)
	}, []byte("AB"))
	if string(res.Output) != "A-1\n" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.RetValue != 'A'+'B' {
		t.Fatalf("ret = %d", res.RetValue)
	}
	if res.Counters.Calls != 5 {
		t.Fatalf("calls = %d", res.Counters.Calls)
	}
}

func TestFsqrt(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		f := pb.FloatTemp("f")
		s := pb.FloatTemp("s")
		r := pb.IntTemp("r")
		pb.FLdi(f, 81)
		pb.Call("fsqrt", s, ir.TempOp(f))
		pb.Op1(ir.CvtFI, r, ir.TempOp(s))
		pb.Ret(r)
	}, nil)
	if res.RetValue != 9 {
		t.Fatalf("fsqrt(81) = %d", res.RetValue)
	}
}

func TestProcedureCallAndRecursionLimit(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	{
		pb := b.NewProc("dbl", target.ClassInt)
		x := pb.P.Params[0]
		r := pb.IntTemp("r")
		pb.Op2(ir.Add, r, ir.TempOp(x), ir.TempOp(x))
		pb.Ret(r)
	}
	pb := b.NewProc("main")
	v := pb.IntTemp("v")
	pb.Call("dbl", v, ir.ImmOp(21))
	pb.Ret(v)
	res, err := Run(b.Prog, Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 42 {
		t.Fatalf("dbl(21) = %d", res.RetValue)
	}

	// Infinite recursion must hit the depth limit, not hang.
	b2 := ir.NewBuilder(mach, 8)
	pb2 := b2.NewProc("main")
	r := pb2.IntTemp("r")
	pb2.Call("main", r)
	pb2.Ret(r)
	if _, err := Run(b2.Prog, Config{Mach: mach}); err == nil {
		t.Fatal("unbounded recursion not rejected")
	}
}

func TestFuelLimit(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ldi(x, 0)
	loop := pb.Block("loop")
	pb.Jmp(loop)
	pb.StartBlock(loop)
	pb.Op2(ir.Add, x, ir.TempOp(x), ir.ImmOp(1))
	pb.Jmp(loop)
	_, err := Run(b.Prog, Config{Mach: mach, MaxSteps: 1000})
	if err == nil {
		t.Fatal("infinite loop not stopped by fuel")
	}
}

func TestCountersByTag(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ldi(x, 5)
	// Hand-inserted spill pair with tags, as an allocator would emit.
	pb.P.NewSlot()
	pb.Emit(ir.Instr{Op: ir.SpillSt, Tag: ir.TagScanStore,
		Uses: []ir.Operand{ir.TempOp(x), ir.SlotOp(0, x)}})
	pb.Emit(ir.Instr{Op: ir.SpillLd, Tag: ir.TagResolveLoad,
		Defs: []ir.Operand{ir.TempOp(x)}, Uses: []ir.Operand{ir.SlotOp(0, x)}})
	pb.Ret(x)
	res, err := Run(b.Prog, Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ByTag[ir.TagScanStore] != 1 || res.Counters.ByTag[ir.TagResolveLoad] != 1 {
		t.Fatalf("tag counters wrong: %v", res.Counters.ByTag)
	}
	if res.Counters.SpillOverhead() != 2 {
		t.Fatalf("spill overhead = %d", res.Counters.SpillOverhead())
	}
	if res.Counters.MemOps < 2 {
		t.Fatalf("memops = %d", res.Counters.MemOps)
	}
	if res.RetValue != 5 {
		t.Fatalf("ret = %d", res.RetValue)
	}
}

// opCase is one row of the exhaustive opcode table: build emits the
// instruction under test, check inspects the result.
type opCase struct {
	name  string
	ops   []ir.Op // opcodes this case covers
	build func(pb *ir.ProcBuilder)
	check func(t *testing.T, res *Result)
}

func retWant(want int64) func(*testing.T, *Result) {
	return func(t *testing.T, res *Result) {
		t.Helper()
		if res.RetValue != want {
			t.Fatalf("ret = %d, want %d", res.RetValue, want)
		}
	}
}

// intBin builds "ret (a op b)".
func intBin(op ir.Op, a, b int64) func(pb *ir.ProcBuilder) {
	return func(pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		y := pb.IntTemp("y")
		d := pb.IntTemp("d")
		pb.Ldi(x, a)
		pb.Ldi(y, b)
		pb.Op2(op, d, ir.TempOp(x), ir.TempOp(y))
		pb.Ret(d)
	}
}

// fltBin builds "ret cvtfi(scale * (a op b))" so float results are
// observable through the integer return register without rounding
// surprises (choose operands making the result integral).
func fltBin(op ir.Op, a, b float64) func(pb *ir.ProcBuilder) {
	return func(pb *ir.ProcBuilder) {
		x := pb.FloatTemp("x")
		y := pb.FloatTemp("y")
		d := pb.FloatTemp("d")
		r := pb.IntTemp("r")
		pb.FLdi(x, a)
		pb.FLdi(y, b)
		pb.Op2(op, d, ir.TempOp(x), ir.TempOp(y))
		pb.Op1(ir.CvtFI, r, ir.TempOp(d))
		pb.Ret(r)
	}
}

// fltCmp builds "ret (a op b)" for the int-valued float compares.
func fltCmp(op ir.Op, a, b float64) func(pb *ir.ProcBuilder) {
	return func(pb *ir.ProcBuilder) {
		x := pb.FloatTemp("x")
		y := pb.FloatTemp("y")
		r := pb.IntTemp("r")
		pb.FLdi(x, a)
		pb.FLdi(y, b)
		pb.Op2(op, r, ir.TempOp(x), ir.TempOp(y))
		pb.Ret(r)
	}
}

// TestOpcodeTable executes at least one case per opcode and then checks
// the table actually covers the complete instruction set, so a new
// opcode cannot land without an interpreter test.
func TestOpcodeTable(t *testing.T) {
	cases := []opCase{
		{name: "nop", ops: []ir.Op{ir.Nop, ir.Ldi, ir.Ret},
			build: func(pb *ir.ProcBuilder) {
				pb.Emit(ir.Instr{Op: ir.Nop})
				x := pb.IntTemp("x")
				pb.Ldi(x, 11)
				pb.Ret(x)
			}, check: retWant(11)},
		{name: "mov", ops: []ir.Op{ir.Mov},
			build: func(pb *ir.ProcBuilder) {
				x := pb.IntTemp("x")
				y := pb.IntTemp("y")
				pb.Ldi(x, -7)
				pb.Mov(y, ir.TempOp(x))
				pb.Ret(y)
			}, check: retWant(-7)},
		{name: "add", ops: []ir.Op{ir.Add}, build: intBin(ir.Add, 40, 2), check: retWant(42)},
		{name: "sub", ops: []ir.Op{ir.Sub}, build: intBin(ir.Sub, 7, 50), check: retWant(-43)},
		{name: "mul", ops: []ir.Op{ir.Mul}, build: intBin(ir.Mul, -6, 7), check: retWant(-42)},
		{name: "div", ops: []ir.Op{ir.Div}, build: intBin(ir.Div, -45, 7), check: retWant(-6)},
		{name: "div-by-zero", ops: nil, build: intBin(ir.Div, 45, 0), check: retWant(0)},
		{name: "div-overflow", ops: nil, build: intBin(ir.Div, math.MinInt64, -1), check: retWant(math.MinInt64)},
		{name: "rem", ops: []ir.Op{ir.Rem}, build: intBin(ir.Rem, -45, 7), check: retWant(-3)},
		{name: "rem-by-zero", ops: nil, build: intBin(ir.Rem, 45, 0), check: retWant(0)},
		{name: "rem-overflow", ops: nil, build: intBin(ir.Rem, math.MinInt64, -1), check: retWant(0)},
		{name: "and", ops: []ir.Op{ir.And}, build: intBin(ir.And, 0b1100, 0b1010), check: retWant(0b1000)},
		{name: "or", ops: []ir.Op{ir.Or}, build: intBin(ir.Or, 0b1100, 0b1010), check: retWant(0b1110)},
		{name: "xor", ops: []ir.Op{ir.Xor}, build: intBin(ir.Xor, 0b1100, 0b1010), check: retWant(0b0110)},
		{name: "shl", ops: []ir.Op{ir.Shl}, build: intBin(ir.Shl, 3, 4), check: retWant(48)},
		{name: "shl-masks-to-63", ops: nil, build: intBin(ir.Shl, 1, 65), check: retWant(2)},
		{name: "shr", ops: []ir.Op{ir.Shr}, build: intBin(ir.Shr, 48, 4), check: retWant(3)},
		{name: "shr-arithmetic", ops: nil, build: intBin(ir.Shr, -1, 60), check: retWant(-1)},
		{name: "neg", ops: []ir.Op{ir.Neg},
			build: func(pb *ir.ProcBuilder) {
				x := pb.IntTemp("x")
				pb.Ldi(x, 9)
				pb.Op1(ir.Neg, x, ir.TempOp(x))
				pb.Ret(x)
			}, check: retWant(-9)},
		{name: "not", ops: []ir.Op{ir.Not},
			build: func(pb *ir.ProcBuilder) {
				x := pb.IntTemp("x")
				pb.Ldi(x, 0)
				pb.Op1(ir.Not, x, ir.TempOp(x))
				pb.Ret(x)
			}, check: retWant(-1)},
		{name: "cmpeq", ops: []ir.Op{ir.CmpEQ}, build: intBin(ir.CmpEQ, 5, 5), check: retWant(1)},
		{name: "cmpne", ops: []ir.Op{ir.CmpNE}, build: intBin(ir.CmpNE, 5, 5), check: retWant(0)},
		{name: "cmplt", ops: []ir.Op{ir.CmpLT}, build: intBin(ir.CmpLT, -9, 2), check: retWant(1)},
		{name: "cmple", ops: []ir.Op{ir.CmpLE}, build: intBin(ir.CmpLE, 3, 2), check: retWant(0)},
		{name: "cmpgt", ops: []ir.Op{ir.CmpGT}, build: intBin(ir.CmpGT, 3, 2), check: retWant(1)},
		{name: "cmpge", ops: []ir.Op{ir.CmpGE}, build: intBin(ir.CmpGE, 2, 2), check: retWant(1)},
		{name: "fmov-fldi", ops: []ir.Op{ir.FMov, ir.FLdi, ir.CvtFI},
			build: func(pb *ir.ProcBuilder) {
				f := pb.FloatTemp("f")
				g := pb.FloatTemp("g")
				r := pb.IntTemp("r")
				pb.FLdi(f, 6.0)
				pb.FMov(g, ir.TempOp(f))
				pb.Op1(ir.CvtFI, r, ir.TempOp(g))
				pb.Ret(r)
			}, check: retWant(6)},
		{name: "fadd", ops: []ir.Op{ir.FAdd}, build: fltBin(ir.FAdd, 1.5, 2.5), check: retWant(4)},
		{name: "fsub", ops: []ir.Op{ir.FSub}, build: fltBin(ir.FSub, 1.5, 2.5), check: retWant(-1)},
		{name: "fmul", ops: []ir.Op{ir.FMul}, build: fltBin(ir.FMul, 1.5, 4), check: retWant(6)},
		{name: "fdiv", ops: []ir.Op{ir.FDiv}, build: fltBin(ir.FDiv, 7, 2), check: retWant(3)},
		{name: "fneg", ops: []ir.Op{ir.FNeg},
			build: func(pb *ir.ProcBuilder) {
				f := pb.FloatTemp("f")
				r := pb.IntTemp("r")
				pb.FLdi(f, 8)
				pb.Op1(ir.FNeg, f, ir.TempOp(f))
				pb.Op1(ir.CvtFI, r, ir.TempOp(f))
				pb.Ret(r)
			}, check: retWant(-8)},
		{name: "fcmpeq", ops: []ir.Op{ir.FCmpEQ}, build: fltCmp(ir.FCmpEQ, 2.5, 2.5), check: retWant(1)},
		{name: "fcmplt", ops: []ir.Op{ir.FCmpLT}, build: fltCmp(ir.FCmpLT, 2.5, 2.5), check: retWant(0)},
		{name: "fcmple", ops: []ir.Op{ir.FCmpLE}, build: fltCmp(ir.FCmpLE, 2.5, 2.5), check: retWant(1)},
		{name: "cvtif", ops: []ir.Op{ir.CvtIF},
			build: func(pb *ir.ProcBuilder) {
				x := pb.IntTemp("x")
				f := pb.FloatTemp("f")
				r := pb.IntTemp("r")
				pb.Ldi(x, -12)
				pb.Op1(ir.CvtIF, f, ir.TempOp(x))
				pb.Op1(ir.CvtFI, r, ir.TempOp(f))
				pb.Ret(r)
			}, check: retWant(-12)},
		{name: "cvtfi-nan", ops: nil,
			build: func(pb *ir.ProcBuilder) {
				f := pb.FloatTemp("f")
				z := pb.FloatTemp("z")
				r := pb.IntTemp("r")
				pb.FLdi(f, 0)
				pb.FLdi(z, 0)
				pb.Op2(ir.FDiv, f, ir.TempOp(f), ir.TempOp(z)) // 0/0 = NaN
				pb.Op1(ir.CvtFI, r, ir.TempOp(f))
				pb.Ret(r)
			}, check: retWant(0)},
		{name: "cvtfi-saturates", ops: nil,
			build: func(pb *ir.ProcBuilder) {
				f := pb.FloatTemp("f")
				r := pb.IntTemp("r")
				pb.FLdi(f, 1e300)
				pb.Op1(ir.CvtFI, r, ir.TempOp(f))
				pb.Ret(r)
			}, check: retWant(math.MaxInt64)},
		{name: "cvtfi-saturates-neg", ops: nil,
			build: func(pb *ir.ProcBuilder) {
				f := pb.FloatTemp("f")
				r := pb.IntTemp("r")
				pb.FLdi(f, -1e300)
				pb.Op1(ir.CvtFI, r, ir.TempOp(f))
				pb.Ret(r)
			}, check: retWant(math.MinInt64)},
		{name: "ld-st", ops: []ir.Op{ir.Ld, ir.St},
			build: func(pb *ir.ProcBuilder) {
				x := pb.IntTemp("x")
				y := pb.IntTemp("y")
				pb.Ldi(x, 77)
				pb.St(ir.TempOp(x), ir.ImmOp(4), 3) // mem[7] = 77
				pb.Ld(y, ir.ImmOp(6), 1)            // y = mem[7]
				pb.Ret(y)
			}, check: func(t *testing.T, res *Result) {
				retWant(77)(t, res)
				if res.Mem[7] != 77 {
					t.Fatalf("final mem[7] = %d", res.Mem[7])
				}
				if res.Counters.MemOps != 2 {
					t.Fatalf("memops = %d", res.Counters.MemOps)
				}
			}},
		{name: "fld-fst", ops: []ir.Op{ir.FLd, ir.FSt},
			build: func(pb *ir.ProcBuilder) {
				f := pb.FloatTemp("f")
				g := pb.FloatTemp("g")
				r := pb.IntTemp("r")
				pb.FLdi(f, 2.5)
				pb.FSt(ir.TempOp(f), ir.ImmOp(0), 9)
				pb.FLd(g, ir.ImmOp(9), 0)
				pb.Op2(ir.FAdd, g, ir.TempOp(g), ir.TempOp(g))
				pb.Op1(ir.CvtFI, r, ir.TempOp(g))
				pb.Ret(r)
			}, check: func(t *testing.T, res *Result) {
				retWant(5)(t, res)
				if res.Mem[9] != math.Float64bits(2.5) {
					t.Fatalf("final mem[9] = %#x", res.Mem[9])
				}
			}},
		{name: "spill", ops: []ir.Op{ir.SpillLd, ir.SpillSt},
			build: func(pb *ir.ProcBuilder) {
				x := pb.IntTemp("x")
				y := pb.IntTemp("y")
				pb.Ldi(x, 33)
				pb.P.NewSlot()
				pb.Emit(ir.Instr{Op: ir.SpillSt, Uses: []ir.Operand{ir.TempOp(x), ir.SlotOp(0, x)}})
				pb.Ldi(x, 0) // clobber the register home
				pb.Emit(ir.Instr{Op: ir.SpillLd, Defs: []ir.Operand{ir.TempOp(y)}, Uses: []ir.Operand{ir.SlotOp(0, x)}})
				pb.Ret(y)
			}, check: retWant(33)},
		{name: "jmp-br-taken", ops: []ir.Op{ir.Jmp, ir.Br},
			build: func(pb *ir.ProcBuilder) {
				c := pb.IntTemp("c")
				r := pb.IntTemp("r")
				pb.Ldi(c, -1) // any non-zero takes Succs[0]
				thenB := pb.Block("then")
				elseB := pb.Block("else")
				join := pb.Block("join")
				pb.Br(ir.TempOp(c), thenB, elseB)
				pb.StartBlock(thenB)
				pb.Ldi(r, 1)
				pb.Jmp(join)
				pb.StartBlock(elseB)
				pb.Ldi(r, 2)
				pb.Jmp(join)
				pb.StartBlock(join)
				pb.Ret(r)
			}, check: retWant(1)},
		{name: "br-not-taken", ops: nil,
			build: func(pb *ir.ProcBuilder) {
				c := pb.IntTemp("c")
				r := pb.IntTemp("r")
				pb.Ldi(c, 0)
				thenB := pb.Block("then")
				elseB := pb.Block("else")
				join := pb.Block("join")
				pb.Br(ir.TempOp(c), thenB, elseB)
				pb.StartBlock(thenB)
				pb.Ldi(r, 1)
				pb.Jmp(join)
				pb.StartBlock(elseB)
				pb.Ldi(r, 2)
				pb.Jmp(join)
				pb.StartBlock(join)
				pb.Ret(r)
			}, check: retWant(2)},
		{name: "call", ops: []ir.Op{ir.Call},
			build: func(pb *ir.ProcBuilder) {
				c := pb.IntTemp("c")
				pb.Call("getc", c) // EOF on empty input: -1
				pb.Ret(c)
			}, check: retWant(-1)},
	}

	covered := make(map[ir.Op]bool)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) { tc.build(pb) }, nil)
			tc.check(t, res)
			if res.Steps == 0 || res.Steps != res.Counters.Total {
				t.Fatalf("Steps = %d, Counters.Total = %d", res.Steps, res.Counters.Total)
			}
		})
		for _, op := range tc.ops {
			covered[op] = true
		}
	}
	for op := ir.Op(0); !strings.HasPrefix(op.String(), "op("); op++ {
		if !covered[op] {
			t.Errorf("opcode %v has no interpreter test case", op)
		}
	}
}

// TestTrapPaths covers every way an execution can fail, so the oracle's
// error channel is as trustworthy as its value channel.
func TestTrapPaths(t *testing.T) {
	mach := target.Tiny(8, 4)

	t.Run("load-out-of-bounds", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("main")
		x := pb.IntTemp("x")
		pb.Ld(x, ir.ImmOp(4), 0)
		pb.Ret(x)
		if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
			t.Fatal("OOB load not rejected")
		}
	})
	t.Run("load-negative", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("main")
		x := pb.IntTemp("x")
		pb.Ld(x, ir.ImmOp(-1), 0)
		pb.Ret(x)
		if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
			t.Fatal("negative load not rejected")
		}
	})
	t.Run("store-out-of-bounds", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("main")
		x := pb.IntTemp("x")
		pb.Ldi(x, 1)
		pb.St(ir.TempOp(x), ir.ImmOp(2), 2)
		pb.Ret(x)
		if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
			t.Fatal("OOB store not rejected")
		}
	})
	t.Run("missing-main", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("not_main")
		x := pb.IntTemp("x")
		pb.Ldi(x, 1)
		pb.Ret(x)
		if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
			t.Fatal("missing main not rejected")
		}
	})
	t.Run("unknown-intrinsic", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("main")
		x := pb.IntTemp("x")
		pb.Call("no_such_runtime_call", x)
		pb.Ret(x)
		if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
			t.Fatal("unknown intrinsic not rejected")
		}
	})
	t.Run("recursion-depth", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("main")
		r := pb.IntTemp("r")
		pb.Call("main", r)
		pb.Ret(r)
		if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
			t.Fatal("unbounded recursion not rejected")
		}
	})
	t.Run("fuel", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("main")
		x := pb.IntTemp("x")
		pb.Ldi(x, 0)
		loop := pb.Block("loop")
		pb.Jmp(loop)
		pb.StartBlock(loop)
		pb.Op2(ir.Add, x, ir.TempOp(x), ir.ImmOp(1))
		pb.Jmp(loop)
		if _, err := Run(b.Prog, Config{Mach: mach, MaxSteps: 100}); !errors.Is(err, ErrFuel) {
			t.Fatalf("err = %v, want ErrFuel", err)
		}
	})
	t.Run("fell-off-block", func(t *testing.T) {
		// Hand-built: a block with no terminator (the builder refuses to
		// construct this, the interpreter must still trap).
		prog := ir.NewProgram(4)
		p := ir.NewProc("main")
		blk := p.NewBlock("entry")
		x := p.NewTemp(target.ClassInt, "x")
		blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.Ldi,
			Defs: []ir.Operand{ir.TempOp(x)}, Uses: []ir.Operand{ir.ImmOp(1)}})
		prog.AddProc(p)
		if _, err := Run(prog, Config{Mach: mach}); err == nil {
			t.Fatal("falling off a block not rejected")
		}
	})
	t.Run("nil-machine", func(t *testing.T) {
		b := ir.NewBuilder(mach, 4)
		pb := b.NewProc("main")
		x := pb.IntTemp("x")
		pb.Ldi(x, 1)
		pb.Ret(x)
		if _, err := Run(b.Prog, Config{}); err == nil {
			t.Fatal("nil machine not rejected")
		}
	})
}

// TestResultMemSnapshot pins the final-memory oracle: MemInit flows in,
// stores show up, and untouched words stay zero.
func TestResultMemSnapshot(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	b.Prog.SetMem(2, 1234)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ld(x, ir.ImmOp(2), 0)
	pb.St(ir.TempOp(x), ir.ImmOp(5), 0)
	pb.Ret(x)
	res, err := Run(b.Prog, Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mem) != 8 {
		t.Fatalf("Mem has %d words", len(res.Mem))
	}
	if res.Mem[2] != 1234 || res.Mem[5] != 1234 {
		t.Fatalf("Mem = %v", res.Mem)
	}
	for i, v := range res.Mem {
		if i != 2 && i != 5 && v != 0 {
			t.Fatalf("mem[%d] = %d, want 0", i, v)
		}
	}
}

func TestParanoidPoisonsCallerSaved(t *testing.T) {
	// A program that (illegally, at machine level) keeps a value in a
	// caller-saved register across a call must break under Paranoid.
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	scratch := mach.CallerSavedRegs(target.ClassInt)[3]
	pb.Emit(ir.Instr{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(scratch)}, Uses: []ir.Operand{ir.ImmOp(7)}})
	x := pb.IntTemp("x")
	pb.Call("getc", x)
	y := pb.IntTemp("y")
	pb.Emit(ir.Instr{Op: ir.Mov, Defs: []ir.Operand{ir.TempOp(y)}, Uses: []ir.Operand{ir.RegOp(scratch)}})
	pb.Ret(y)

	plain, err := Run(b.Prog, Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}
	if plain.RetValue != 7 {
		t.Fatalf("non-paranoid ret = %d", plain.RetValue)
	}
	par, err := Run(b.Prog, Config{Mach: mach, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.RetValue == 7 {
		t.Fatal("paranoid mode failed to poison the caller-saved register")
	}
}
