package vm

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/target"
)

func run(t *testing.T, build func(b *ir.Builder, pb *ir.ProcBuilder), input []byte) *Result {
	t.Helper()
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 32)
	pb := b.NewProc("main")
	build(b, pb)
	if err := ir.ValidateProgram(b.Prog, mach); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	res, err := Run(b.Prog, Config{Mach: mach, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIntArithmetic(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		y := pb.IntTemp("y")
		pb.Ldi(x, 7)
		pb.Op2(ir.Mul, y, ir.TempOp(x), ir.ImmOp(6))    // 42
		pb.Op2(ir.Sub, y, ir.TempOp(y), ir.ImmOp(2))    // 40
		pb.Op2(ir.Div, y, ir.TempOp(y), ir.ImmOp(3))    // 13
		pb.Op2(ir.Rem, y, ir.TempOp(y), ir.ImmOp(5))    // 3
		pb.Op2(ir.Shl, y, ir.TempOp(y), ir.ImmOp(4))    // 48
		pb.Op2(ir.Xor, y, ir.TempOp(y), ir.ImmOp(0xff)) // 207
		pb.Ret(y)
	}, nil)
	if res.RetValue != 207 {
		t.Fatalf("ret = %d, want 207", res.RetValue)
	}
}

func TestDivRemByZeroDefined(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		z := pb.IntTemp("z")
		q := pb.IntTemp("q")
		r := pb.IntTemp("r")
		pb.Ldi(x, 99)
		pb.Ldi(z, 0)
		pb.Op2(ir.Div, q, ir.TempOp(x), ir.TempOp(z))
		pb.Op2(ir.Rem, r, ir.TempOp(x), ir.TempOp(z))
		pb.Op2(ir.Add, q, ir.TempOp(q), ir.TempOp(r))
		pb.Ret(q)
	}, nil)
	if res.RetValue != 0 {
		t.Fatalf("div/rem by zero = %d, want 0", res.RetValue)
	}
}

func TestMinInt64Division(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		m := pb.IntTemp("m")
		pb.Ldi(x, math.MinInt64)
		pb.Ldi(m, -1)
		pb.Op2(ir.Div, x, ir.TempOp(x), ir.TempOp(m))
		pb.Ret(x)
	}, nil)
	if res.RetValue != math.MinInt64 {
		t.Fatalf("MinInt64/-1 = %d", res.RetValue)
	}
}

func TestFloatOpsAndConversion(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		f := pb.FloatTemp("f")
		g := pb.FloatTemp("g")
		r := pb.IntTemp("r")
		pb.FLdi(f, 2.5)
		pb.FLdi(g, 4.0)
		pb.Op2(ir.FMul, f, ir.TempOp(f), ir.TempOp(g)) // 10
		pb.Op2(ir.FAdd, f, ir.TempOp(f), ir.FImmOp(0.75))
		pb.Op1(ir.CvtFI, r, ir.TempOp(f)) // 10
		pb.Ret(r)
	}, nil)
	if res.RetValue != 10 {
		t.Fatalf("float chain = %d, want 10", res.RetValue)
	}
}

func TestMemoryAndBounds(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		x := pb.IntTemp("x")
		y := pb.IntTemp("y")
		pb.Ldi(x, 123)
		pb.St(ir.TempOp(x), ir.ImmOp(5), 2) // mem[7] = 123
		pb.Ld(y, ir.ImmOp(3), 4)            // y = mem[7]
		pb.Ret(y)
	}, nil)
	if res.RetValue != 123 {
		t.Fatalf("mem roundtrip = %d", res.RetValue)
	}

	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 4)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ld(x, ir.ImmOp(100), 0)
	pb.Ret(x)
	if _, err := Run(b.Prog, Config{Mach: mach}); err == nil {
		t.Fatal("out-of-bounds load not rejected")
	}
}

func TestIntrinsicsIO(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		c1 := pb.IntTemp("c1")
		c2 := pb.IntTemp("c2")
		c3 := pb.IntTemp("c3")
		pb.Call("getc", c1)
		pb.Call("getc", c2)
		pb.Call("getc", c3) // EOF: -1
		pb.Call("putc", ir.NoTemp, ir.TempOp(c1))
		pb.Call("puti", ir.NoTemp, ir.TempOp(c3))
		sum := pb.IntTemp("sum")
		pb.Op2(ir.Add, sum, ir.TempOp(c1), ir.TempOp(c2))
		pb.Ret(sum)
	}, []byte("AB"))
	if string(res.Output) != "A-1\n" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.RetValue != 'A'+'B' {
		t.Fatalf("ret = %d", res.RetValue)
	}
	if res.Counters.Calls != 5 {
		t.Fatalf("calls = %d", res.Counters.Calls)
	}
}

func TestFsqrt(t *testing.T) {
	res := run(t, func(b *ir.Builder, pb *ir.ProcBuilder) {
		f := pb.FloatTemp("f")
		s := pb.FloatTemp("s")
		r := pb.IntTemp("r")
		pb.FLdi(f, 81)
		pb.Call("fsqrt", s, ir.TempOp(f))
		pb.Op1(ir.CvtFI, r, ir.TempOp(s))
		pb.Ret(r)
	}, nil)
	if res.RetValue != 9 {
		t.Fatalf("fsqrt(81) = %d", res.RetValue)
	}
}

func TestProcedureCallAndRecursionLimit(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	{
		pb := b.NewProc("dbl", target.ClassInt)
		x := pb.P.Params[0]
		r := pb.IntTemp("r")
		pb.Op2(ir.Add, r, ir.TempOp(x), ir.TempOp(x))
		pb.Ret(r)
	}
	pb := b.NewProc("main")
	v := pb.IntTemp("v")
	pb.Call("dbl", v, ir.ImmOp(21))
	pb.Ret(v)
	res, err := Run(b.Prog, Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetValue != 42 {
		t.Fatalf("dbl(21) = %d", res.RetValue)
	}

	// Infinite recursion must hit the depth limit, not hang.
	b2 := ir.NewBuilder(mach, 8)
	pb2 := b2.NewProc("main")
	r := pb2.IntTemp("r")
	pb2.Call("main", r)
	pb2.Ret(r)
	if _, err := Run(b2.Prog, Config{Mach: mach}); err == nil {
		t.Fatal("unbounded recursion not rejected")
	}
}

func TestFuelLimit(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ldi(x, 0)
	loop := pb.Block("loop")
	pb.Jmp(loop)
	pb.StartBlock(loop)
	pb.Op2(ir.Add, x, ir.TempOp(x), ir.ImmOp(1))
	pb.Jmp(loop)
	_, err := Run(b.Prog, Config{Mach: mach, MaxSteps: 1000})
	if err == nil {
		t.Fatal("infinite loop not stopped by fuel")
	}
}

func TestCountersByTag(t *testing.T) {
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ldi(x, 5)
	// Hand-inserted spill pair with tags, as an allocator would emit.
	pb.P.NewSlot()
	pb.Emit(ir.Instr{Op: ir.SpillSt, Tag: ir.TagScanStore,
		Uses: []ir.Operand{ir.TempOp(x), ir.SlotOp(0, x)}})
	pb.Emit(ir.Instr{Op: ir.SpillLd, Tag: ir.TagResolveLoad,
		Defs: []ir.Operand{ir.TempOp(x)}, Uses: []ir.Operand{ir.SlotOp(0, x)}})
	pb.Ret(x)
	res, err := Run(b.Prog, Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ByTag[ir.TagScanStore] != 1 || res.Counters.ByTag[ir.TagResolveLoad] != 1 {
		t.Fatalf("tag counters wrong: %v", res.Counters.ByTag)
	}
	if res.Counters.SpillOverhead() != 2 {
		t.Fatalf("spill overhead = %d", res.Counters.SpillOverhead())
	}
	if res.Counters.MemOps < 2 {
		t.Fatalf("memops = %d", res.Counters.MemOps)
	}
	if res.RetValue != 5 {
		t.Fatalf("ret = %d", res.RetValue)
	}
}

func TestParanoidPoisonsCallerSaved(t *testing.T) {
	// A program that (illegally, at machine level) keeps a value in a
	// caller-saved register across a call must break under Paranoid.
	mach := target.Tiny(8, 4)
	b := ir.NewBuilder(mach, 8)
	pb := b.NewProc("main")
	scratch := mach.CallerSavedRegs(target.ClassInt)[3]
	pb.Emit(ir.Instr{Op: ir.Ldi, Defs: []ir.Operand{ir.RegOp(scratch)}, Uses: []ir.Operand{ir.ImmOp(7)}})
	x := pb.IntTemp("x")
	pb.Call("getc", x)
	y := pb.IntTemp("y")
	pb.Emit(ir.Instr{Op: ir.Mov, Defs: []ir.Operand{ir.TempOp(y)}, Uses: []ir.Operand{ir.RegOp(scratch)}})
	pb.Ret(y)

	plain, err := Run(b.Prog, Config{Mach: mach})
	if err != nil {
		t.Fatal(err)
	}
	if plain.RetValue != 7 {
		t.Fatalf("non-paranoid ret = %d", plain.RetValue)
	}
	par, err := Run(b.Prog, Config{Mach: mach, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.RetValue == 7 {
		t.Fatal("paranoid mode failed to poison the caller-saved register")
	}
}
