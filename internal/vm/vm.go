// Package vm interprets IR programs and counts dynamic instructions.
//
// It stands in for the paper's Digital Alpha hardware and the HALT
// instrumentation tool (§3): Table 1's dynamic instruction counts, Table
// 2's spill-code percentages and Figure 3's spill composition all come
// from the per-tag counters this interpreter maintains. The same
// interpreter executes both unallocated code (operands are temporaries,
// each activation record holds a temp file — the "infinite register
// machine" view of §2.2) and allocated code (operands are physical
// registers and stack slots), which is how tests establish that an
// allocation preserved program semantics.
package vm

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/ir"
	"repro/internal/target"
)

// Config controls one execution.
type Config struct {
	Mach *target.Machine
	// Input is the byte stream the getc intrinsic consumes.
	Input []byte
	// MaxSteps bounds execution (0 means the 500M default).
	MaxSteps int64
	// Paranoid poisons caller-saved registers (except return registers)
	// after every call returns, with a value derived from the step
	// counter. Correctly allocated code never reads a poisoned value;
	// code that keeps a live value in a caller-saved register across a
	// call misbehaves immediately instead of silently working.
	Paranoid bool
	// CountBlocks records how many times each basic block begins
	// executing, keyed by procedure and block name (names are stable
	// across Clone and dead-code elimination, so a reference run's
	// counts join onto the pipeline's cloned procedures). The counts
	// land in Result.BlockVisits and feed profile-guided cost models —
	// the optimality oracle weighs a spill decision by exactly these
	// frequencies.
	CountBlocks bool
}

// Counters aggregates dynamic execution statistics.
type Counters struct {
	// Total counts every executed instruction.
	Total int64
	// ByTag breaks Total down by allocator tag; ByTag[ir.TagNone] is
	// original program work, the rest is allocation overhead.
	ByTag [ir.NumTags]int64
	// MemOps counts memory instructions (program loads/stores plus
	// spill traffic).
	MemOps int64
	// Cycles applies a simple fixed cost model (see cost table) so
	// "run time" has a machine-independent analogue.
	Cycles int64
	// Calls counts procedure and intrinsic calls.
	Calls int64
}

// SpillOverhead returns the dynamic count of allocator-inserted
// instructions, excluding callee-save prologue/epilogue traffic (the
// quantity behind Table 2, which counts "load, store, and move
// instructions inserted for allocation candidates only").
func (c *Counters) SpillOverhead() int64 {
	return c.ByTag[ir.TagScanLoad] + c.ByTag[ir.TagScanStore] + c.ByTag[ir.TagScanMove] +
		c.ByTag[ir.TagResolveLoad] + c.ByTag[ir.TagResolveStore] + c.ByTag[ir.TagResolveMove]
}

// SaveRestoreOverhead returns dynamic callee-save traffic.
func (c *Counters) SaveRestoreOverhead() int64 {
	return c.ByTag[ir.TagSave] + c.ByTag[ir.TagRestore]
}

// Result is the outcome of an execution.
type Result struct {
	Output   []byte
	RetValue int64
	Counters Counters
	// Mem is the final global-memory image. Together with Output and
	// RetValue it is the observable behavior the conformance harness
	// diffs between unallocated and allocated executions.
	Mem []uint64
	// Steps is the number of instructions executed before returning.
	Steps int64
	// BlockVisits maps procedure name → block name → number of times the
	// block began executing. Nil unless Config.CountBlocks was set.
	BlockVisits map[string]map[string]int64
}

// costOf is the fixed cycle model: memory 3, multiply 4, divide 20,
// floating divide 16, call 2, everything else 1.
func costOf(op ir.Op) int64 {
	switch op {
	case ir.Ld, ir.St, ir.FLd, ir.FSt, ir.SpillLd, ir.SpillSt:
		return 3
	case ir.Mul:
		return 4
	case ir.Div, ir.Rem:
		return 20
	case ir.FDiv:
		return 16
	case ir.Call:
		return 2
	default:
		return 1
	}
}

type frame struct {
	proc  *ir.Proc
	temps []uint64
	slots []uint64
	block *ir.Block
	idx   int
}

// ErrFuel reports that execution exceeded MaxSteps.
var ErrFuel = errors.New("vm: fuel exhausted")

type machine struct {
	prog   *ir.Program
	cfg    Config
	regs   []uint64
	mem    []uint64
	in     []byte
	inPos  int
	out    []byte
	steps  int64
	max    int64
	ctr    Counters
	visits map[string]map[string]int64
}

// visit counts one entry into block b of procedure p (CountBlocks only).
func (m *machine) visit(p *ir.Proc, b *ir.Block) {
	if m.visits == nil {
		return
	}
	pv := m.visits[p.Name]
	if pv == nil {
		pv = make(map[string]int64)
		m.visits[p.Name] = pv
	}
	pv[b.Name]++
}

// Run executes the program from its main procedure.
func Run(prog *ir.Program, cfg Config) (*Result, error) {
	if cfg.Mach == nil {
		return nil, errors.New("vm: Config.Mach is required")
	}
	m := &machine{
		prog: prog,
		cfg:  cfg,
		regs: make([]uint64, cfg.Mach.NumRegs()),
		mem:  make([]uint64, prog.MemWords),
		in:   cfg.Input,
		max:  cfg.MaxSteps,
	}
	if m.max == 0 {
		m.max = 500_000_000
	}
	if cfg.CountBlocks {
		m.visits = make(map[string]map[string]int64)
	}
	for a, v := range prog.MemInit {
		m.mem[a] = uint64(v)
	}
	main := prog.Proc(prog.Main)
	if main == nil {
		return nil, fmt.Errorf("vm: no procedure %q", prog.Main)
	}
	if err := m.call(main, 0); err != nil {
		return nil, err
	}
	return &Result{
		Output:      m.out,
		RetValue:    int64(m.regs[cfg.Mach.RetReg(target.ClassInt)]),
		Counters:    m.ctr,
		Mem:         m.mem,
		Steps:       m.steps,
		BlockVisits: m.visits,
	}, nil
}

func (m *machine) call(p *ir.Proc, depth int) error {
	if depth > 10_000 {
		return fmt.Errorf("vm: call depth exceeded in %s", p.Name)
	}
	f := &frame{
		proc:  p,
		temps: make([]uint64, p.NumTemps()),
		slots: make([]uint64, p.NumSlots),
		block: p.Entry(),
	}
	m.visit(p, f.block)
	for {
		if f.idx >= len(f.block.Instrs) {
			return fmt.Errorf("vm: %s: fell off block %s", p.Name, f.block.Name)
		}
		in := &f.block.Instrs[f.idx]
		m.steps++
		if m.steps > m.max {
			return ErrFuel
		}
		m.ctr.Total++
		m.ctr.ByTag[in.Tag]++
		m.ctr.Cycles += costOf(in.Op)

		switch in.Op {
		case ir.Jmp:
			f.block = f.block.Succs[0]
			f.idx = 0
			m.visit(p, f.block)
			continue
		case ir.Br:
			if int64(m.read(f, in.Uses[0])) != 0 {
				f.block = f.block.Succs[0]
			} else {
				f.block = f.block.Succs[1]
			}
			f.idx = 0
			m.visit(p, f.block)
			continue
		case ir.Ret:
			return nil
		case ir.Call:
			m.ctr.Calls++
			if err := m.doCall(in, depth); err != nil {
				return err
			}
			f.idx++
			continue
		}
		if err := m.exec(f, in); err != nil {
			return fmt.Errorf("vm: %s: block %s: %v: %w", p.Name, f.block.Name, in.Op, err)
		}
		f.idx++
	}
}

func (m *machine) doCall(in *ir.Instr, depth int) error {
	name := in.CalleeName()
	if callee := m.prog.Proc(name); callee != nil {
		if err := m.call(callee, depth+1); err != nil {
			return err
		}
	} else if err := m.intrinsic(name); err != nil {
		return err
	}
	if m.cfg.Paranoid {
		m.poisonCallerSaved()
	}
	return nil
}

// poisonCallerSaved trashes caller-saved registers except return
// registers, emulating an adversarial callee.
func (m *machine) poisonCallerSaved() {
	mach := m.cfg.Mach
	keepInt := mach.RetReg(target.ClassInt)
	keepFloat := mach.RetReg(target.ClassFloat)
	for r := 0; r < mach.NumRegs(); r++ {
		reg := target.Reg(r)
		if !mach.CallerSaved(reg) || reg == keepInt || reg == keepFloat {
			continue
		}
		m.regs[r] = 0xDEAD0000_00000000 | uint64(m.steps)
	}
}

func (m *machine) read(f *frame, o ir.Operand) uint64 {
	switch o.Kind {
	case ir.KindTemp:
		return f.temps[o.Temp]
	case ir.KindReg:
		return m.regs[o.Reg]
	case ir.KindImm:
		return uint64(o.Imm)
	case ir.KindFImm:
		return math.Float64bits(o.F)
	case ir.KindSlot:
		return f.slots[o.Imm]
	}
	panic(fmt.Sprintf("vm: unreadable operand kind %d", o.Kind))
}

func (m *machine) write(f *frame, o ir.Operand, v uint64) {
	switch o.Kind {
	case ir.KindTemp:
		f.temps[o.Temp] = v
	case ir.KindReg:
		m.regs[o.Reg] = v
	case ir.KindSlot:
		f.slots[o.Imm] = v
	default:
		panic(fmt.Sprintf("vm: unwritable operand kind %d", o.Kind))
	}
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (m *machine) exec(f *frame, in *ir.Instr) error {
	ri := func(i int) int64 { return int64(m.read(f, in.Uses[i])) }
	rf := func(i int) float64 { return math.Float64frombits(m.read(f, in.Uses[i])) }
	wi := func(v int64) { m.write(f, in.Defs[0], uint64(v)) }
	wf := func(v float64) { m.write(f, in.Defs[0], math.Float64bits(v)) }

	switch in.Op {
	case ir.Nop:
	case ir.Mov, ir.FMov, ir.SpillLd:
		m.write(f, in.Defs[0], m.read(f, in.Uses[0]))
		if in.Op == ir.SpillLd {
			m.ctr.MemOps++
		}
	case ir.SpillSt:
		m.write(f, in.Uses[1], m.read(f, in.Uses[0]))
		m.ctr.MemOps++
	case ir.Ldi:
		wi(ri(0))
	case ir.FLdi:
		m.write(f, in.Defs[0], m.read(f, in.Uses[0]))
	case ir.Add:
		wi(ri(0) + ri(1))
	case ir.Sub:
		wi(ri(0) - ri(1))
	case ir.Mul:
		wi(ri(0) * ri(1))
	case ir.Div:
		if d := ri(1); d == 0 {
			wi(0)
		} else if ri(0) == math.MinInt64 && d == -1 {
			wi(math.MinInt64)
		} else {
			wi(ri(0) / d)
		}
	case ir.Rem:
		if d := ri(1); d == 0 {
			wi(0)
		} else if ri(0) == math.MinInt64 && d == -1 {
			wi(0)
		} else {
			wi(ri(0) % d)
		}
	case ir.And:
		wi(ri(0) & ri(1))
	case ir.Or:
		wi(ri(0) | ri(1))
	case ir.Xor:
		wi(ri(0) ^ ri(1))
	case ir.Shl:
		wi(ri(0) << (uint64(ri(1)) & 63))
	case ir.Shr:
		wi(ri(0) >> (uint64(ri(1)) & 63))
	case ir.Neg:
		wi(-ri(0))
	case ir.Not:
		wi(^ri(0))
	case ir.CmpEQ:
		wi(int64(b2i(ri(0) == ri(1))))
	case ir.CmpNE:
		wi(int64(b2i(ri(0) != ri(1))))
	case ir.CmpLT:
		wi(int64(b2i(ri(0) < ri(1))))
	case ir.CmpLE:
		wi(int64(b2i(ri(0) <= ri(1))))
	case ir.CmpGT:
		wi(int64(b2i(ri(0) > ri(1))))
	case ir.CmpGE:
		wi(int64(b2i(ri(0) >= ri(1))))
	case ir.FAdd:
		wf(rf(0) + rf(1))
	case ir.FSub:
		wf(rf(0) - rf(1))
	case ir.FMul:
		wf(rf(0) * rf(1))
	case ir.FDiv:
		wf(rf(0) / rf(1))
	case ir.FNeg:
		wf(-rf(0))
	case ir.FCmpEQ:
		wi(int64(b2i(rf(0) == rf(1))))
	case ir.FCmpLT:
		wi(int64(b2i(rf(0) < rf(1))))
	case ir.FCmpLE:
		wi(int64(b2i(rf(0) <= rf(1))))
	case ir.CvtIF:
		wf(float64(ri(0)))
	case ir.CvtFI:
		v := rf(0)
		if math.IsNaN(v) {
			wi(0)
		} else if v >= math.MaxInt64 {
			wi(math.MaxInt64)
		} else if v <= math.MinInt64 {
			wi(math.MinInt64)
		} else {
			wi(int64(v))
		}
	case ir.Ld, ir.FLd:
		addr := ri(0) + ri(1)
		if addr < 0 || addr >= int64(len(m.mem)) {
			return fmt.Errorf("load address %d out of range [0,%d)", addr, len(m.mem))
		}
		m.write(f, in.Defs[0], m.mem[addr])
		m.ctr.MemOps++
	case ir.St, ir.FSt:
		addr := ri(1) + ri(2)
		if addr < 0 || addr >= int64(len(m.mem)) {
			return fmt.Errorf("store address %d out of range [0,%d)", addr, len(m.mem))
		}
		m.mem[addr] = m.read(f, in.Uses[0])
		m.ctr.MemOps++
	default:
		return fmt.Errorf("unimplemented opcode")
	}
	return nil
}

// intrinsic implements the runtime the benchmark programs call into. All
// intrinsics follow the calling convention: arguments in parameter
// registers, results in the return register of the appropriate class.
func (m *machine) intrinsic(name string) error {
	mach := m.cfg.Mach
	iArg := func(i int) int64 { return int64(m.regs[mach.ParamRegs(target.ClassInt)[i]]) }
	fArg := func(i int) float64 {
		return math.Float64frombits(m.regs[mach.ParamRegs(target.ClassFloat)[i]])
	}
	iRet := func(v int64) { m.regs[mach.RetReg(target.ClassInt)] = uint64(v) }
	fRet := func(v float64) { m.regs[mach.RetReg(target.ClassFloat)] = math.Float64bits(v) }

	switch name {
	case "getc":
		// Read one byte of input; -1 at end of stream.
		if m.inPos >= len(m.in) {
			iRet(-1)
		} else {
			iRet(int64(m.in[m.inPos]))
			m.inPos++
		}
	case "putc":
		m.out = append(m.out, byte(iArg(0)))
	case "puti":
		m.out = strconv.AppendInt(m.out, iArg(0), 10)
		m.out = append(m.out, '\n')
	case "putf":
		m.out = strconv.AppendFloat(m.out, fArg(0), 'g', 6, 64)
		m.out = append(m.out, '\n')
	case "fsqrt":
		fRet(math.Sqrt(fArg(0)))
	case "fexp":
		fRet(math.Exp(fArg(0)))
	case "flog":
		v := fArg(0)
		if v <= 0 {
			fRet(0)
		} else {
			fRet(math.Log(v))
		}
	default:
		return fmt.Errorf("vm: unknown intrinsic %q", name)
	}
	return nil
}
