package regalloc

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/progs"
)

// TestEngineConform spot-checks the engine-level differential harness
// across the built-in algorithms on a spill-forcing machine.
func TestEngineConform(t *testing.T) {
	mach := Tiny(6, 4)
	cfg, err := progs.ProfileGen("high-pressure", 4)
	if err != nil {
		t.Fatal(err)
	}
	prog := progs.Random(mach, cfg)
	for _, algo := range []string{"binpack", "twopass", "coloring", "linearscan"} {
		eng, err := New(mach, WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Conform(context.Background(), prog, []byte("conform spot check"))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Mismatch != nil {
			t.Fatalf("%s: unexpected mismatch %+v", algo, res.Mismatch)
		}
		if res.Ref == nil || res.Run == nil || res.Report == nil {
			t.Fatalf("%s: incomplete result %+v", algo, res)
		}
		if res.Run.Counters.Total == 0 {
			t.Fatalf("%s: allocated program executed nothing", algo)
		}
	}
}

// skewedAllocator is a deliberately wrong allocator: it bumps the first
// integer constant of the procedure before handing off to binpack, so
// its output is a perfectly well-formed allocation of a *different*
// program. Structural validation and the symbolic verifier both pass;
// only differential execution can tell.
type skewedAllocator struct{ inner Allocator }

func (s skewedAllocator) Name() string { return "skewed" }

func (s skewedAllocator) Allocate(p *Proc) (*Result, error) {
	q := p.Clone()
outer:
	for _, b := range q.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == OpLdi && len(in.Uses) == 1 && in.Uses[0].Kind == ir.KindImm {
				in.Uses[0].Imm++
				break outer
			}
		}
	}
	return s.inner.Allocate(q)
}

var registerSkewedOnce sync.Once

// TestEngineConformDetectsDivergence registers the skewed allocator and
// checks Conform reports the divergence with a recoverable *Mismatch.
func TestEngineConformDetectsDivergence(t *testing.T) {
	var regErr error
	registerSkewedOnce.Do(func() {
		regErr = Register("skewed", func(m *Machine) Allocator {
			return skewedAllocator{inner: NewAllocator(m, DefaultOptions())}
		})
	})
	if regErr != nil {
		t.Fatal(regErr)
	}
	mach := Tiny(6, 4)
	b := NewBuilder(mach, 8)
	pb := b.NewProc("main")
	x := pb.IntTemp("x")
	pb.Ldi(x, 41)
	pb.Call("puti", NoTemp, TempOp(x))
	pb.Ret(x)

	eng, err := New(mach, WithAlgorithm("skewed"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Conform(context.Background(), b.Prog, nil)
	if err == nil {
		t.Fatal("skewed allocation passed conformance")
	}
	var mm *Mismatch
	if !errors.As(err, &mm) {
		t.Fatalf("error %v does not unwrap to *Mismatch", err)
	}
	if mm.Kind != MismatchOutput {
		t.Fatalf("mismatch kind = %s, want %s", mm.Kind, MismatchOutput)
	}
	if res == nil || res.Mismatch != mm {
		t.Fatalf("result does not carry the mismatch: %+v", res)
	}
	if string(res.Ref.Output) != "41\n" || string(res.Run.Output) != "42\n" {
		t.Fatalf("outputs %q vs %q", res.Ref.Output, res.Run.Output)
	}

	// Error plumbing for pipeline failures: a cancelled context fails
	// before execution with a nil result.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Conform(ctx, b.Prog, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled conform: %v", err)
	}
}
