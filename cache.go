package regalloc

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// CacheKey content-addresses one allocation request: it is a
// cryptographic digest over the program's canonical textual form (plus
// its initial memory image), the machine's convention-complete spec
// (target.Machine.Spec), and the engine configuration that affects the
// output (algorithm, binpacking options, pass toggles). Two requests
// share a key exactly when the engine would produce the same allocated
// program for both, so a cached result can be substituted for a fresh
// allocation without re-running any pipeline phase.
type CacheKey string

// CachedAllocation is one immutable cache entry: the allocated program
// and the report of the allocation that produced it. Entries are shared
// between all cache readers and must never be mutated; the engine
// clones the program (and copies the report) on every hit, so callers
// always own what AllocateCached returns.
type CachedAllocation struct {
	Program *Program
	Report  *Report
}

// ResultCache stores finished allocations by content address. The
// engine consults it in AllocateCached when installed with WithCache;
// implementations must be safe for concurrent use. NewShardedCache is
// the built-in implementation; library users may inject their own
// (e.g. a distributed cache) as long as entries are treated as
// immutable.
type ResultCache interface {
	// Get returns the entry stored under key, if any.
	Get(key CacheKey) (*CachedAllocation, bool)
	// Put stores an entry under key, evicting older entries if needed.
	Put(key CacheKey, e *CachedAllocation)
	// Stats reports the cache's cumulative counters.
	Stats() CacheStats
}

// CacheStats are a ResultCache's cumulative counters.
type CacheStats struct {
	// Entries is the current entry count; Capacity the maximum (0 if
	// unbounded).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits and Misses count Get outcomes; Evictions counts entries
	// dropped to make room.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns the fraction of Gets that hit, or 0 before any Get.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// HotEntry pairs a cache key with its entry, as returned by HotLister.
type HotEntry struct {
	Key   CacheKey
	Entry *CachedAllocation
}

// HotLister is an optional ResultCache capability: caches that track
// recency can enumerate their hottest (most recently used) entries.
// The cluster layer uses it to replicate a node's hot working set to
// its ring successor before the node leaves, and to warm a joining
// node from the successor that previously owned its key range.
// NewShardedCache implements it; the tiered cache delegates to its
// fast tier.
type HotLister interface {
	// Hottest returns up to n entries in roughly
	// most-recently-used-first order. The entries are shared and must
	// be treated as immutable.
	Hottest(n int) []HotEntry
}

// WithCache installs a result cache consulted by AllocateCached. The
// same cache may back several engines (even for different machines or
// algorithms): the cache key covers the machine and configuration, so
// entries never collide across engines.
func WithCache(c ResultCache) Option {
	return func(e *Engine) error {
		e.cache = c
		return nil
	}
}

// Cache returns the engine's result cache, or nil if none is installed.
func (e *Engine) Cache() ResultCache { return e.cache }

// configFingerprint renders every engine knob that affects the
// allocated output. Parallelism and observers are excluded: results
// are deterministic regardless of the worker count, and observers do
// not change the output.
func (e *Engine) configFingerprint() string {
	return fmt.Sprintf("algo=%s binpack=%+v dce=%t peephole=%t fwdstores=%t verify=%t",
		e.algorithm, e.binpackEff, e.dce, e.peephole, e.forwardStores, e.verify)
}

// CacheKey computes the content address AllocateCached uses for prog on
// this engine: sha256 over the engine configuration, the machine spec,
// the program's canonical text, and its initial memory image.
func (e *Engine) CacheKey(prog *Program) CacheKey {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s", e.configFingerprint(), e.mach.Spec())
	(&ir.Printer{}).WriteProgram(h, prog)
	if len(prog.MemInit) > 0 {
		addrs := make([]int, 0, len(prog.MemInit))
		for a := range prog.MemInit {
			addrs = append(addrs, a)
		}
		sort.Ints(addrs)
		for _, a := range addrs {
			fmt.Fprintf(h, "mem[%d]=%d\n", a, prog.MemInit[a])
		}
	}
	return CacheKey(fmt.Sprintf("sha256:%x", h.Sum(nil)))
}

// AllocateCached is AllocateProgram behind the engine's result cache:
// on a hit the cached allocation is returned — cloned, so the caller
// owns the result outright and cannot corrupt the shared entry — with
// Report.Cached set and zero pipeline work performed; on a miss the
// program is allocated as usual and the result is stored before being
// returned. Without an installed cache it is exactly AllocateProgram.
// Safe for concurrent use; concurrent misses on the same key allocate
// redundantly but harmlessly (results are deterministic).
func (e *Engine) AllocateCached(ctx context.Context, prog *Program) (*Program, *Report, error) {
	out, rep, _, err := e.AllocateCachedKey(ctx, prog)
	return out, rep, err
}

// AllocateCachedKey is AllocateCached, additionally returning the
// computed content address so callers that need the key (the serving
// layer puts it in every response) do not hash the program a second
// time. Without an installed cache the key is still computed and
// returned.
func (e *Engine) AllocateCachedKey(ctx context.Context, prog *Program) (*Program, *Report, CacheKey, error) {
	key := e.CacheKey(prog)
	if e.cache == nil {
		out, rep, err := e.AllocateProgram(ctx, prog)
		return out, rep, key, err
	}
	if ent, ok := e.cache.Get(key); ok {
		rep := ent.Report.copy()
		rep.Cached = true
		return ent.Program.Clone(), rep, key, nil
	}
	out, rep, err := e.AllocateProgram(ctx, prog)
	if err != nil {
		return nil, nil, key, err
	}
	// Store private copies: the caller owns out and rep and is free to
	// mutate both after we return.
	e.cache.Put(key, &CachedAllocation{Program: out.Clone(), Report: rep.copy()})
	return out, rep, key, nil
}

// copy returns a deep copy of the report (fresh slice headers), so a
// cached report stays immutable while callers own theirs.
func (r *Report) copy() *Report {
	c := *r
	c.Procs = append([]ProcReport(nil), r.Procs...)
	c.PhaseStats = append([]PhaseStat(nil), r.PhaseStats...)
	return &c
}

// shardedCache is the built-in ResultCache: entries are spread over
// independently locked shards (hash of the key), each an LRU list, so
// concurrent engine workers rarely contend on the same lock.
type shardedCache struct {
	shards  []cacheShard
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int // this shard's entry bound; shard caps sum to capacity
	entries map[CacheKey]*list.Element
	lru     *list.List // front = most recently used
}

// lruEntry is one shard LRU node.
type lruEntry struct {
	key CacheKey
	val *CachedAllocation
}

// DefaultCacheEntries is the capacity NewShardedCache uses when asked
// for a non-positive one.
const DefaultCacheEntries = 4096

// NewShardedCache returns a concurrency-safe ResultCache holding at
// most capacity entries (DefaultCacheEntries when capacity <= 0),
// spread over nShards independently locked LRU shards (16 when
// nShards <= 0). Eviction is least-recently-used per shard.
func NewShardedCache(capacity, nShards int) ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	if nShards <= 0 {
		nShards = 16
	}
	if nShards > capacity {
		nShards = capacity
	}
	c := &shardedCache{shards: make([]cacheShard, nShards)}
	for i := range c.shards {
		// Spread capacity exactly: the first capacity%nShards shards
		// hold one extra entry, and the shard caps sum to capacity.
		c.shards[i].cap = capacity / nShards
		if i < capacity%nShards {
			c.shards[i].cap++
		}
		c.shards[i].entries = make(map[CacheKey]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// shard maps a key onto its shard by FNV-1a hash.
func (c *shardedCache) shard(key CacheKey) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[int(h.Sum32())%len(c.shards)]
}

func (c *shardedCache) Get(key CacheKey) (*CachedAllocation, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	var val *CachedAllocation
	if ok {
		s.lru.MoveToFront(el)
		val = el.Value.(*lruEntry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

func (c *shardedCache) Put(key CacheKey, e *CachedAllocation) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*lruEntry).val = e
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[key] = s.lru.PushFront(&lruEntry{key: key, val: e})
	var evictions uint64
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*lruEntry).key)
		evictions++
	}
	s.mu.Unlock()
	if evictions > 0 {
		c.evicted.Add(evictions)
	}
}

// Hottest implements HotLister: it takes entries from the
// most-recently-used end of every shard's LRU list, round-robin, so the
// result is approximately MRU-first across the whole cache (exact order
// between shards is not tracked — the hits that matter for replication
// are "in the working set or not", not their exact rank).
func (c *shardedCache) Hottest(n int) []HotEntry {
	if n <= 0 {
		return nil
	}
	out := make([]HotEntry, 0, n)
	// els[i] walks shard i front→back.
	els := make([]*list.Element, len(c.shards))
	for i := range c.shards {
		c.shards[i].mu.Lock()
		els[i] = c.shards[i].lru.Front()
	}
	for len(out) < n {
		advanced := false
		for i := range els {
			if els[i] == nil {
				continue
			}
			e := els[i].Value.(*lruEntry)
			out = append(out, HotEntry{Key: e.key, Entry: e.val})
			els[i] = els[i].Next()
			advanced = true
			if len(out) == n {
				break
			}
		}
		if !advanced {
			break
		}
	}
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
	return out
}

func (c *shardedCache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		st.Capacity += s.cap
		s.mu.Lock()
		st.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}

// TieredCache chains a fast (memory) tier in front of a slow
// (persistent) tier behind the one ResultCache interface. Gets consult
// the fast tier first and promote slow-tier hits into it; Puts write
// both tiers, leaving the slow tier free to refuse entries by policy
// (cost-aware admission in internal/diskcache). Build with
// NewTieredCache; the serving daemon assembles one when started with a
// persistence directory, which is how warm entries survive a restart.
type TieredCache struct {
	fast, slow ResultCache
}

// NewTieredCache composes a fast and a slow ResultCache into one.
func NewTieredCache(fast, slow ResultCache) *TieredCache {
	return &TieredCache{fast: fast, slow: slow}
}

// Get consults the fast tier, then the slow tier (promoting a hit into
// the fast tier so the disk is read once per working-set entry).
func (t *TieredCache) Get(key CacheKey) (*CachedAllocation, bool) {
	if e, ok := t.fast.Get(key); ok {
		return e, true
	}
	e, ok := t.slow.Get(key)
	if !ok {
		return nil, false
	}
	t.fast.Put(key, e)
	return e, true
}

// Put stores into both tiers; the slow tier applies its own admission
// policy and may decline.
func (t *TieredCache) Put(key CacheKey, e *CachedAllocation) {
	t.fast.Put(key, e)
	t.slow.Put(key, e)
}

// Stats reports the composite view a caller of the plain interface
// expects: lookups counted once (the fast tier sees every Get), entries
// and capacity summed across tiers. Per-tier numbers are available via
// TierStats.
func (t *TieredCache) Stats() CacheStats {
	fast, slow := t.fast.Stats(), t.slow.Stats()
	return CacheStats{
		Entries:  fast.Entries + slow.Entries,
		Capacity: fast.Capacity + slow.Capacity,
		// A composite hit is a hit in either tier; every Get reaches the
		// fast tier, and only fast misses reach the slow tier.
		Hits:      fast.Hits + slow.Hits,
		Misses:    slow.Misses,
		Evictions: fast.Evictions + slow.Evictions,
	}
}

// TierStats returns the fast and slow tiers' own counters.
func (t *TieredCache) TierStats() (fast, slow CacheStats) {
	return t.fast.Stats(), t.slow.Stats()
}

// Hottest implements HotLister by delegating to the fast tier (the
// recency signal lives there); a fast tier without the capability
// yields nil.
func (t *TieredCache) Hottest(n int) []HotEntry {
	if hl, ok := t.fast.(HotLister); ok {
		return hl.Hottest(n)
	}
	return nil
}
