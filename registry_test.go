package regalloc_test

import (
	"sort"
	"strings"
	"testing"

	regalloc "repro"
	"repro/internal/alloc"
	"repro/internal/experiments"
)

// TestAlgorithmsSortedComplete pins the registry listing contract:
// every built-in (including the branch-and-bound oracle) is present,
// the order is sorted, and there are no duplicates — tools print this
// list verbatim and the conformance grid uses it as an axis.
func TestAlgorithmsSortedComplete(t *testing.T) {
	have := regalloc.Algorithms()
	if !sort.StringsAreSorted(have) {
		t.Fatalf("Algorithms() not sorted: %v", have)
	}
	seen := map[string]bool{}
	for _, n := range have {
		if seen[n] {
			t.Fatalf("duplicate name %q in %v", n, have)
		}
		seen[n] = true
	}
	for _, want := range []string{"binpack", "coloring", "linearscan", "oracle", "twopass"} {
		if !seen[want] {
			t.Errorf("built-in %q missing from registry %v", want, have)
		}
	}
}

// TestMustRegisterDuplicatePanics: the init-time registration helper
// must panic on a name collision, so two packages claiming the same
// allocator name fail the program at startup instead of silently
// shadowing each other.
func TestMustRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustRegister on a taken name did not panic")
		}
		if !strings.Contains(strings.ToLower(strings.TrimSpace(toString(r))), "already registered") {
			t.Fatalf("panic %v does not explain the duplicate", r)
		}
	}()
	alloc.MustRegister("binpack", func(m *regalloc.Machine) regalloc.Allocator { return nil })
}

func toString(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

// TestResolveUnknownName: the experiments-layer resolver must reject an
// unknown allocator with an error that names both the request and the
// available set.
func TestResolveUnknownName(t *testing.T) {
	mach := regalloc.Alpha()
	if _, err := experiments.Resolve("no-such-allocator", mach); err == nil {
		t.Fatal("Resolve accepted an unknown allocator")
	} else if !strings.Contains(err.Error(), "no-such-allocator") {
		t.Fatalf("error %q does not name the missing allocator", err)
	}
	// And every listed name must resolve — the listing and the resolver
	// cannot drift apart.
	for _, n := range regalloc.Algorithms() {
		if strings.HasPrefix(n, "test-") {
			continue // other tests register throwaway names
		}
		if _, err := experiments.Resolve(n, mach); err != nil {
			t.Errorf("listed allocator %q does not resolve: %v", n, err)
		}
	}
}
