package regalloc

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/progs"
)

// cacheProg builds a deterministic program for cache tests.
func cacheProg(m *Machine, seed int64) *Program {
	return progs.Random(m, progs.DefaultGen(seed))
}

func progText(m *Machine, p *Program) string {
	var sb strings.Builder
	(&Printer{Mach: m}).WriteProgram(&sb, p)
	return sb.String()
}

func TestCacheKeyDeterminism(t *testing.T) {
	m := Tiny(6, 4)
	eng, err := New(m, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	k1 := eng.CacheKey(cacheProg(m, 7))
	k2 := eng.CacheKey(cacheProg(m, 7))
	if k1 != k2 {
		t.Fatalf("same program hashed differently: %s vs %s", k1, k2)
	}
	if k3 := eng.CacheKey(cacheProg(m, 8)); k3 == k1 {
		t.Fatal("different programs share a cache key")
	}

	// Every configuration knob that changes the output must change the
	// key.
	variants := []Option{
		WithAlgorithm("linearscan"),
		WithDCE(false),
		WithPeephole(false),
		WithForwardStores(true),
		WithBinpack(func() BinpackOptions {
			o := DefaultOptions().Binpack
			o.MoveOpt = false
			return o
		}()),
	}
	for i, opt := range variants {
		ve, err := New(m, opt, WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		if vk := ve.CacheKey(cacheProg(m, 7)); vk == k1 {
			t.Errorf("variant %d: configuration change did not change the cache key", i)
		}
	}

	// A different machine must change the key even under the same
	// configuration and program shape.
	m2 := Tiny(8, 6)
	e2, err := New(m2, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if k := e2.CacheKey(cacheProg(m2, 7)); k == k1 {
		t.Error("different machine did not change the cache key")
	}

	// The initial memory image is part of the content.
	pm := cacheProg(m, 7)
	base := eng.CacheKey(pm)
	pm.SetMem(3, 42)
	if eng.CacheKey(pm) == base {
		t.Error("MemInit change did not change the cache key")
	}
}

func TestAllocateCachedHitSkipsPipeline(t *testing.T) {
	m := Tiny(6, 4)
	var events int
	var mu sync.Mutex
	eng, err := New(m,
		WithCache(NewShardedCache(64, 4)),
		WithObserver(func(Event) { mu.Lock(); events++; mu.Unlock() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	prog := cacheProg(m, 11)

	out1, rep1, err := eng.AllocateCached(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Cached {
		t.Fatal("first allocation reported Cached")
	}
	missEvents := events
	if missEvents == 0 {
		t.Fatal("miss path fired no observer events")
	}

	out2, rep2, err := eng.AllocateCached(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Cached {
		t.Fatal("second allocation not served from cache")
	}
	if events != missEvents {
		t.Fatalf("hit path ran the pipeline: %d observer events after hit, want %d", events, missEvents)
	}
	// The hit performed zero phase work of its own: the report's phase
	// stats are the original allocation's, byte-identical.
	if got, want := fmt.Sprint(rep2.PhaseStats), fmt.Sprint(rep1.PhaseStats); got != want {
		t.Errorf("hit report phases diverge from the original:\n got %s\nwant %s", got, want)
	}
	if progText(m, out2) != progText(m, out1) {
		t.Error("cached program differs from the original allocation")
	}

	st := eng.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestAllocateCachedMutationIsolation(t *testing.T) {
	m := Tiny(6, 4)
	eng, err := New(m, WithCache(NewShardedCache(64, 4)))
	if err != nil {
		t.Fatal(err)
	}
	prog := cacheProg(m, 13)

	// Populate, then grab a hit and vandalize everything reachable.
	if _, _, err := eng.AllocateCached(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	hit, rep, err := eng.AllocateCached(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	want := progText(m, hit)
	for _, p := range hit.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				b.Instrs[i].Op = ir.Nop
				b.Instrs[i].Uses = nil
				b.Instrs[i].Defs = nil
			}
		}
	}
	hit.SetMem(0, -999)
	rep.Procs = nil
	rep.Totals = Stats{}

	// The cache entry must be unaffected: a fresh hit reproduces the
	// original allocation and report.
	again, rep2, err := eng.AllocateCached(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Cached {
		t.Fatal("expected a cache hit")
	}
	if got := progText(m, again); got != want {
		t.Error("mutating a returned program corrupted the cache entry")
	}
	if len(rep2.Procs) == 0 || rep2.Totals.Candidates == 0 {
		t.Error("mutating a returned report corrupted the cached report")
	}
	if again.MemInit[0] == -999 {
		t.Error("mutating returned MemInit corrupted the cache entry")
	}
}

func TestShardedCacheEviction(t *testing.T) {
	c := NewShardedCache(2, 1) // 2 entries, one shard: strict LRU
	mk := func(i int) (CacheKey, *CachedAllocation) {
		return CacheKey(fmt.Sprintf("k%d", i)), &CachedAllocation{}
	}
	k0, v0 := mk(0)
	k1, v1 := mk(1)
	k2, v2 := mk(2)
	c.Put(k0, v0)
	c.Put(k1, v1)
	if _, ok := c.Get(k0); !ok { // k0 now most recent
		t.Fatal("k0 missing before eviction")
	}
	c.Put(k2, v2) // evicts k1 (least recently used)
	if _, ok := c.Get(k1); ok {
		t.Error("k1 survived eviction past capacity")
	}
	if _, ok := c.Get(k0); !ok {
		t.Error("LRU evicted the recently used k0")
	}
	if _, ok := c.Get(k2); !ok {
		t.Error("k2 missing after Put")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Capacity != 2 {
		t.Errorf("stats = %+v, want 2 entries / 1 eviction / capacity 2", st)
	}
}

func TestAllocateCachedConcurrent(t *testing.T) {
	m := Tiny(6, 4)
	eng, err := New(m, WithCache(NewShardedCache(32, 8)))
	if err != nil {
		t.Fatal(err)
	}
	progsN := 4
	want := make([]string, progsN)
	for i := 0; i < progsN; i++ {
		out, _, err := eng.AllocateProgram(context.Background(), cacheProg(m, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = progText(m, out)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				seed := (w + i) % progsN
				out, _, err := eng.AllocateCached(context.Background(), cacheProg(m, int64(seed)))
				if err != nil {
					t.Error(err)
					return
				}
				if progText(m, out) != want[seed] {
					t.Errorf("seed %d: concurrent cached result diverged", seed)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := eng.Cache().Stats(); st.Hits == 0 {
		t.Error("no cache hits under concurrent load")
	}
}
