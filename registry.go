package regalloc

import "repro/internal/alloc"

// Register adds a named allocator factory to the global registry, making
// it selectable with WithAlgorithm(name). The factory is called once per
// engine worker; instances it returns are never shared between
// goroutines, so they may keep per-instance scratch state. Registering a
// duplicate or empty name, or a nil factory, is an error.
//
// The built-in allocators self-register as "binpack" (the paper's
// second-chance binpacking), "twopass", "coloring", "linearscan" and
// "oracle" (the branch-and-bound optimality oracle for small programs).
func Register(name string, factory func(*Machine) Allocator) error {
	// Machine and Allocator are aliases of the internal types, so the
	// signature is already an alloc.Factory.
	return alloc.Register(name, factory)
}

// Algorithms returns the names of every registered allocator, sorted.
func Algorithms() []string { return alloc.Names() }
