// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus the steady-state engine benchmark the CI bench job
// regresses on. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the paper's headline quantity as custom metrics
// (dynamic instructions, spill percentages, allocation microseconds) in
// addition to Go's timing of the full pipeline; every benchmark also
// reports allocs/op, the second axis the CI regression gate watches (a
// time/op regression can hide behind machine noise — an allocs/op
// regression cannot).
package regalloc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"testing"

	regalloc "repro"
	"repro/internal/alloc"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/irbin"
	"repro/internal/progs"
	"repro/internal/serve"
	"repro/internal/target"
	"repro/internal/vm"
)

const benchScale = 0.25 // workload scale for benchmarks (1.0 = full tables)

func benchAllocator(b *testing.B, bench *progs.Benchmark, mk func(*target.Machine) alloc.Allocator) {
	mach := target.Alpha()
	var last vm.Counters
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scale := int(float64(bench.DefaultScale) * benchScale)
		if scale < 1 {
			scale = 1
		}
		c, _, err := experiments.RunBench(bench, mach, scale, mk(mach))
		if err != nil {
			b.Fatal(err)
		}
		last = c
	}
	b.ReportMetric(float64(last.Total), "dyn-instrs")
	b.ReportMetric(float64(last.Cycles), "sim-cycles")
	b.ReportMetric(100*float64(last.SpillOverhead())/float64(last.Total), "spill-%")
}

// BenchmarkTable1 regenerates Table 1: every suite benchmark under
// second-chance binpacking and under graph coloring.
func BenchmarkTable1(b *testing.B) {
	for _, bench := range progs.Suite() {
		bench := bench
		b.Run(bench.Name+"/binpack", func(b *testing.B) {
			benchAllocator(b, bench, experiments.Binpack)
		})
		b.Run(bench.Name+"/coloring", func(b *testing.B) {
			benchAllocator(b, bench, experiments.GraphColoring)
		})
	}
}

// BenchmarkTable2 regenerates Table 2's spill percentages over the
// spill-relevant benchmarks (the spill-free ones are covered by Table 1).
func BenchmarkTable2(b *testing.B) {
	for _, name := range []string{"doduc", "fpppp", "wc"} {
		bench := progs.Named(name)
		b.Run(name+"/binpack", func(b *testing.B) {
			benchAllocator(b, bench, experiments.Binpack)
		})
		b.Run(name+"/coloring", func(b *testing.B) {
			benchAllocator(b, bench, experiments.GraphColoring)
		})
	}
}

// BenchmarkFigure3 regenerates the Figure 3 spill-composition data for
// the six spill-heavy benchmarks and reports the evict/resolve split.
func BenchmarkFigure3(b *testing.B) {
	mach := target.Alpha()
	for _, name := range experiments.Figure3Benchmarks {
		bench := progs.Named(name)
		for _, scheme := range []struct {
			suffix string
			mk     func(*target.Machine) alloc.Allocator
		}{
			{"b", experiments.Binpack},
			{"c", experiments.GraphColoring},
		} {
			b.Run(name+"-"+scheme.suffix, func(b *testing.B) {
				var last vm.Counters
				for i := 0; i < b.N; i++ {
					scale := int(float64(bench.DefaultScale) * benchScale)
					if scale < 1 {
						scale = 1
					}
					c, _, err := experiments.RunBench(bench, mach, scale, scheme.mk(mach))
					if err != nil {
						b.Fatal(err)
					}
					last = c
				}
				evict := last.ByTag[1] + last.ByTag[2] + last.ByTag[3]
				resolve := last.ByTag[4] + last.ByTag[5] + last.ByTag[6]
				b.ReportMetric(float64(evict), "evict-ops")
				b.ReportMetric(float64(resolve), "resolve-ops")
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3: allocation-core time for both
// allocators as the candidate count grows. The headline claim — coloring
// degrades sharply with interference-graph size while linear scan stays
// near-linear — shows up directly in the ns/op column.
func BenchmarkTable3(b *testing.B) {
	mach := target.Alpha()
	for _, mod := range progs.Table3Modules(mach) {
		mod := mod
		for _, scheme := range []struct {
			name string
			mk   func(*target.Machine) alloc.Allocator
		}{
			{"coloring", experiments.GraphColoring},
			{"binpack", experiments.Binpack},
		} {
			b.Run(fmt.Sprintf("%s/%s", mod.Name, scheme.name), func(b *testing.B) {
				a := scheme.mk(mach)
				var edges, cands int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					edges, cands = 0, 0
					for _, p := range mod.Prog.Procs {
						if p.Name == "main" {
							continue
						}
						res, err := a.Allocate(p)
						if err != nil {
							b.Fatal(err)
						}
						edges += res.Stats.InterferenceEdges
						cands += res.Stats.Candidates
					}
				}
				b.ReportMetric(float64(cands), "candidates")
				if edges > 0 {
					b.ReportMetric(float64(edges), "iedges")
				}
			})
		}
	}
}

// BenchmarkEngineSteadyState measures the engine's batch hot path in
// steady state: one engine reused across iterations over the Table 3
// modules, a single worker so phase attribution is exact, verification
// off (Table 3 times the allocator, not the checker). One warmup batch
// fills the pooled scratch arenas before the clock starts. The per-phase
// wall costs from the engine Report are exported as custom metrics
// (<phase>-ns/op), and allocs/op is the zero-allocation target the CI
// bench job guards.
func BenchmarkEngineSteadyState(b *testing.B) {
	mach := target.Alpha()
	for _, mod := range progs.Table3Modules(mach) {
		mod := mod
		b.Run(mod.Name, func(b *testing.B) {
			eng, err := regalloc.New(mach,
				regalloc.WithVerify(false), regalloc.WithParallelism(1))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, _, err := eng.AllocateProgram(ctx, mod.Prog); err != nil {
				b.Fatal(err) // warmup: populate the pooled scratch
			}
			var rep *regalloc.Report
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, rep, err = eng.AllocateProgram(ctx, mod.Prog); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, ps := range rep.PhaseStats {
				if ps.Ns > 0 {
					b.ReportMetric(float64(ps.Ns), ps.Phase+"-ns/op")
				}
			}
			b.ReportMetric(float64(rep.HeapAllocs), "heap-allocs/op")
		})
	}
}

// BenchmarkServeSteadyState measures the allocation service in its
// steady state: a fixed workload (experiments.Workload) replayed over
// real HTTP against an in-process lsra-served instance whose
// content-addressed cache is already warm, so every request is a cache
// hit. This is the serving-path analogue of BenchmarkEngineSteadyState:
// time/op is one full workload replay (requests + JSON + cache lookups,
// no allocator phases), and the cache hit rate is exported as a custom
// metric to catch a silently cold cache.
func BenchmarkServeSteadyState(b *testing.B) {
	s, err := serve.New(serve.Config{Workers: 2, QueueDepth: 64, Verify: false})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	mach, err := target.Parse("x86-8")
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := experiments.Workload(mach, []string{"default", "straightline"}, 100, 2)
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	replay := func() {
		for _, job := range jobs {
			body, err := json.Marshal(&serve.AllocateRequest{Machine: "x86-8", Program: job.Text})
			if err != nil {
				b.Fatal(err)
			}
			resp, err := client.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	}
	replay() // warm the cache: every timed request is a hit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay()
	}
	b.StopTimer()
	st := s.Cache().Stats()
	b.ReportMetric(st.HitRate(), "cache-hit-rate")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(jobs)), "ns/request")
}

// BenchmarkCorpusDecodeSteadyState measures the binary-codec decode path
// in its steady state: a generated on-disk corpus (internal/corpus) is
// mmap'd and every iteration zero-copy-decodes one program into a reused
// arena. allocs/op must be 0 — the decode loop touches only arena
// storage once warm — and the CI bench job guards that floor via
// benchguard's from-zero rule.
func BenchmarkCorpusDecodeSteadyState(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.lsco")
	if err := corpus.Generate(path, corpus.GenOptions{Count: 64, Seed: 8, Workers: 1}); err != nil {
		b.Fatal(err)
	}
	r, err := corpus.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	arena := irbin.NewArena()
	var bytesPerCycle int64
	for i := 0; i < r.Count(); i++ { // warmup: grow the arena to the high-water mark
		bytesPerCycle += int64(len(r.Frame(i)))
		if _, err := r.Decode(i, arena); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(bytesPerCycle / int64(r.Count()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Decode(i%r.Count(), arena); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTwoPass regenerates the §3.1 comparison: second-chance
// vs. two-pass binpacking on wc (the paper reports two-pass 38% slower)
// and eqntott (identical).
func BenchmarkAblationTwoPass(b *testing.B) {
	for _, name := range []string{"wc", "eqntott"} {
		bench := progs.Named(name)
		b.Run(name+"/second-chance", func(b *testing.B) {
			benchAllocator(b, bench, experiments.Binpack)
		})
		b.Run(name+"/two-pass", func(b *testing.B) {
			benchAllocator(b, bench, experiments.TwoPass)
		})
	}
}

// BenchmarkAblationMoveOpt measures the §2.5 move optimization on the
// call-intensive li workload (parameter-move elimination).
func BenchmarkAblationMoveOpt(b *testing.B) {
	bench := progs.Named("li")
	b.Run("with-moveopt", func(b *testing.B) {
		benchAllocator(b, bench, experiments.Binpack)
	})
	b.Run("without-moveopt", func(b *testing.B) {
		benchAllocator(b, bench, func(m *target.Machine) alloc.Allocator {
			o := experiments.BinpackOptionsNoMoveOpt()
			return experiments.NewBinpack(m, o)
		})
	})
}

// BenchmarkAblationEarlySecondChance measures §2.5's eviction moves on
// wc, where they rescue the hot working set at the phase transition.
func BenchmarkAblationEarlySecondChance(b *testing.B) {
	bench := progs.Named("wc")
	b.Run("with-esc", func(b *testing.B) {
		benchAllocator(b, bench, experiments.Binpack)
	})
	b.Run("without-esc", func(b *testing.B) {
		benchAllocator(b, bench, func(m *target.Machine) alloc.Allocator {
			o := experiments.BinpackOptionsNoESC()
			return experiments.NewBinpack(m, o)
		})
	})
}

// BenchmarkAblationStrictLinear measures the §2.6 strictly-linear
// consistency mode against the iterative dataflow default.
func BenchmarkAblationStrictLinear(b *testing.B) {
	bench := progs.Named("fpppp")
	b.Run("iterative-dataflow", func(b *testing.B) {
		benchAllocator(b, bench, experiments.Binpack)
	})
	b.Run("strict-linear", func(b *testing.B) {
		benchAllocator(b, bench, func(m *target.Machine) alloc.Allocator {
			o := experiments.BinpackOptionsStrictLinear()
			return experiments.NewBinpack(m, o)
		})
	})
}
